package campaign

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/store"
)

func openStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.OpenOptions(t.TempDir(), store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func smallSpec() Spec {
	return Spec{
		Name:       "small",
		Algorithms: []string{"snake-a", "rm-rf"},
		Sides:      []int{4, 6},
		Trials:     []int{6},
		Workloads:  []string{WorkloadPerm, WorkloadZeroOne},
		Seed:       11,
	}
}

func TestRunnerRunsAndPersistsEveryCell(t *testing.T) {
	st := openStore(t)
	cells, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Store: st, Concurrency: 3, TrialWorkers: 2}
	p, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != len(cells) || p.Executed != len(cells) || p.Skipped != 0 {
		t.Fatalf("first run progress = %+v", p)
	}
	for _, c := range cells {
		if !st.Has(c.Key) {
			t.Fatalf("cell %s not persisted", c)
		}
	}

	// A second run of the same cells is pure skips.
	p2, err := r.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Executed != 0 || p2.Skipped != len(cells) {
		t.Fatalf("second run progress = %+v", p2)
	}
}

func TestRunnerResumeRunsOnlyMissingCells(t *testing.T) {
	st := openStore(t)
	cells, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-run a prefix, as an interrupted campaign would have left it.
	const done = 3
	r := &Runner{Store: st}
	if _, err := r.Run(context.Background(), cells[:done]); err != nil {
		t.Fatal(err)
	}

	var executed, skipped atomic.Int64
	r2 := &Runner{Store: st, Concurrency: 2, OnCell: func(i int, c Cell, o CellOutcome) {
		switch o {
		case CellExecuted:
			executed.Add(1)
		case CellSkipped:
			skipped.Add(1)
		}
	}}
	p, err := r2.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if p.Skipped != done || p.Executed != len(cells)-done {
		t.Fatalf("resume progress = %+v, want %d skipped / %d executed", p, done, len(cells)-done)
	}
	if executed.Load() != int64(len(cells)-done) || skipped.Load() != int64(done) {
		t.Fatalf("OnCell saw %d executed / %d skipped", executed.Load(), skipped.Load())
	}
}

func TestRunnerCancellation(t *testing.T) {
	st := openStore(t)
	cells, err := smallSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{Store: st}).Run(ctx, cells); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestRunnerRequiresStore(t *testing.T) {
	if _, err := (&Runner{}).Run(context.Background(), nil); err == nil {
		t.Fatal("Run without a Store succeeded")
	}
}

// TestExportByteIdentityAcrossInterruption is the package-level half of
// the crash-resume acceptance criterion: a campaign run in interrupted
// pieces against one store exports byte-identically to the same campaign
// run uninterrupted against a fresh store.
func TestExportByteIdentityAcrossInterruption(t *testing.T) {
	spec := smallSpec()
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Store A: run in three fragments (simulating two interruptions),
	// out of order concurrency within each fragment.
	stA := openStore(t)
	rA := &Runner{Store: stA, Concurrency: 2}
	for _, frag := range [][2]int{{0, 3}, {0, 5}, {0, len(cells)}} {
		if _, err := rA.Run(context.Background(), cells[frag[0]:frag[1]]); err != nil {
			t.Fatal(err)
		}
	}

	// Store B: one uninterrupted serial run.
	stB := openStore(t)
	if _, err := (&Runner{Store: stB}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}

	jsonA, err := ExportJSON(spec, stA.Get)
	if err != nil {
		t.Fatal(err)
	}
	jsonB, err := ExportJSON(spec, stB.Get)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonA, jsonB) {
		t.Fatalf("JSON exports differ across interruption history:\nA: %d bytes\nB: %d bytes", len(jsonA), len(jsonB))
	}
	csvA, err := ExportCSV(spec, stA.Get)
	if err != nil {
		t.Fatal(err)
	}
	csvB, err := ExportCSV(spec, stB.Get)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csvA, csvB) {
		t.Fatal("CSV exports differ across interruption history")
	}
}

func TestExportIncomplete(t *testing.T) {
	spec := smallSpec()
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t)
	if _, err := (&Runner{Store: st}).Run(context.Background(), cells[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := ExportJSON(spec, st.Get); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("partial export returned %v, want ErrIncomplete", err)
	}
	if _, err := ExportCSV(spec, st.Get); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("partial CSV export returned %v, want ErrIncomplete", err)
	}
}

func TestExportShapes(t *testing.T) {
	spec := Spec{Algorithms: []string{"snake-a"}, Sides: []int{4}, Trials: []int{4}, Seed: 3}
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t)
	if _, err := (&Runner{Store: st}).Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	out, err := ExportJSON(spec, st.Get)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"algorithm": "snake-a"`)) ||
		!bytes.Contains(out, []byte(`"steps"`)) {
		t.Fatalf("JSON export missing expected fields:\n%s", out)
	}
	csv, err := ExportCSV(spec, st.Get)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(csv), []byte("\n"))
	if len(lines) != 1+len(cells) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+len(cells), csv)
	}
	if !bytes.HasPrefix(lines[0], []byte("algorithm,side,trials,workload,seed,key,steps_mean")) {
		t.Fatalf("CSV header = %s", lines[0])
	}
}

// TestRunnerConcurrencySafety drives two runners over the same store at
// once; the store must end complete and consistent (run with -race).
func TestRunnerConcurrencySafety(t *testing.T) {
	spec := smallSpec()
	cells, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	st := openStore(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &Runner{Store: st, Concurrency: 2}
			if _, err := r.Run(context.Background(), cells); err != nil {
				t.Errorf("concurrent Run: %v", err)
			}
		}()
	}
	wg.Wait()
	for _, c := range cells {
		if !st.Has(c.Key) {
			t.Fatalf("cell %s missing after concurrent runs", c)
		}
	}
	if _, err := ExportJSON(spec, st.Get); err != nil {
		t.Fatal(err)
	}
}
