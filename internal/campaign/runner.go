package campaign

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mcbatch"
	"repro/internal/report"
	"repro/internal/store"
)

// CellOutcome says how the Runner satisfied one cell.
type CellOutcome int

const (
	// CellSkipped means the cell's payload was already in the store —
	// the resume path pays nothing for it.
	CellSkipped CellOutcome = iota
	// CellExecuted means the cell ran its batch and was persisted.
	CellExecuted
)

// String returns the wire name of the outcome.
func (o CellOutcome) String() string {
	switch o {
	case CellSkipped:
		return "skipped"
	case CellExecuted:
		return "executed"
	default:
		return "invalid"
	}
}

// Progress counts a finished run's cells by outcome.
type Progress struct {
	Total    int `json:"total"`
	Skipped  int `json:"skipped"`
	Executed int `json:"executed"`
}

// Runner executes campaign cells against a durable store with bounded
// concurrency. Every completed cell is persisted before the runner moves
// past it, so an interrupted run (crash, cancellation) leaves a store
// from which the next run of the same Spec resumes by skipping.
type Runner struct {
	// Store receives each cell's canonical payload; cells whose key it
	// already holds are skipped. Required.
	Store *store.Store
	// Concurrency is the number of cells in flight at once. Default 1 —
	// the per-cell trial pool already uses the machine; raise it to
	// overlap small cells.
	Concurrency int
	// TrialWorkers is the mcbatch worker-pool size inside each cell
	// (0 = GOMAXPROCS; a result-neutral execution hint).
	TrialWorkers int
	// CellTimeout bounds one cell's execution (0 = unbounded). A cell
	// that exceeds it fails the run with context.DeadlineExceeded.
	CellTimeout time.Duration
	// OnCell, when set, observes each cell's outcome as it completes.
	// Called concurrently from worker goroutines.
	OnCell func(i int, c Cell, outcome CellOutcome)
	// Execute, when set, replaces mcbatch.RunCtx as the batch executor —
	// the hook the daemon uses to route large cells through the
	// distributed fabric (internal/fabric). Any implementation must
	// return a Batch bit-identical to mcbatch.RunCtx for the same Spec
	// (the fabric coordinator guarantees this), or stored payloads stop
	// being placement-independent.
	Execute func(ctx context.Context, spec mcbatch.Spec) (*mcbatch.Batch, error)
}

// Run executes cells until all are stored or ctx is cancelled. It
// returns the outcome counts on success; on error (a failed cell, or
// cancellation) the store still holds every cell completed so far, and a
// later Run of the same cells finishes the remainder.
//
// Cells are claimed in expansion order by a bounded pool
// (mcbatch.MapCtx), and results land in the store as cells finish; the
// store's contents after completion are independent of Concurrency and
// interruption history, which is what makes exports byte-identical
// across crash/resume schedules.
func (r *Runner) Run(ctx context.Context, cells []Cell) (Progress, error) {
	if r.Store == nil {
		return Progress{}, fmt.Errorf("campaign: Runner needs a Store")
	}
	concurrency := r.Concurrency
	if concurrency <= 0 {
		concurrency = 1
	}
	execute := r.Execute
	if execute == nil {
		execute = mcbatch.RunCtx
	}
	outcomes, err := mcbatch.MapCtx(ctx, concurrency, len(cells), func(i int) (CellOutcome, error) {
		c := cells[i]
		if r.Store.Has(c.Key) {
			if r.OnCell != nil {
				r.OnCell(i, c, CellSkipped)
			}
			return CellSkipped, nil
		}
		spec := c.Spec
		spec.Workers = r.TrialWorkers
		cellCtx := ctx
		if r.CellTimeout > 0 {
			var cancel context.CancelFunc
			cellCtx, cancel = context.WithTimeout(ctx, r.CellTimeout)
			defer cancel()
		}
		b, err := execute(cellCtx, spec)
		if err != nil {
			return 0, fmt.Errorf("campaign: cell %d (%s): %w", i, c, err)
		}
		payload, err := report.BuildPayload(c.Spec, c.Key, b)
		if err != nil {
			return 0, fmt.Errorf("campaign: cell %d (%s): %w", i, c, err)
		}
		if err := r.Store.Put(c.Key, payload); err != nil {
			return 0, fmt.Errorf("campaign: cell %d (%s): %w", i, c, err)
		}
		if r.OnCell != nil {
			r.OnCell(i, c, CellExecuted)
		}
		return CellExecuted, nil
	})
	if err != nil {
		return Progress{}, err
	}
	p := Progress{Total: len(cells)}
	for _, o := range outcomes {
		if o == CellSkipped {
			p.Skipped++
		} else {
			p.Executed++
		}
	}
	return p, nil
}
