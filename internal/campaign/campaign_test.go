package campaign

import (
	"strings"
	"testing"
)

func gridSpec() Spec {
	return Spec{
		Name:       "avg-case",
		Algorithms: []string{"snake-a", "rm-rf"},
		Sides:      []int{4, 8},
		Trials:     []int{8},
		Workloads:  []string{WorkloadPerm, WorkloadZeroOne},
		Seed:       7,
	}
}

func TestExpandOrderAndShape(t *testing.T) {
	cells, err := gridSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*1*2 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Nested order: algorithms, sides, trials, workloads.
	want := []string{
		"snake-a side=4 trials=8 perm",
		"snake-a side=4 trials=8 zeroone",
		"snake-a side=8 trials=8 perm",
		"snake-a side=8 trials=8 zeroone",
		"rm-rf side=4 trials=8 perm",
		"rm-rf side=4 trials=8 zeroone",
		"rm-rf side=8 trials=8 perm",
		"rm-rf side=8 trials=8 zeroone",
	}
	for i, c := range cells {
		if c.String() != want[i] {
			t.Fatalf("cell %d = %q, want %q", i, c, want[i])
		}
		if c.Spec.Rows != c.Side || c.Spec.Cols != c.Side || c.Spec.Seed != 7 {
			t.Fatalf("cell %d spec mismatch: %+v", i, c.Spec)
		}
		if (c.Workload == WorkloadZeroOne) != c.Spec.ZeroOne {
			t.Fatalf("cell %d workload/ZeroOne mismatch", i)
		}
		// The cell key is the batch's canonical hash — the store and the
		// daemon cache share entries.
		want, err := c.Spec.Hash()
		if err != nil || want != c.Key {
			t.Fatalf("cell %d key != Spec.Hash(): %v", i, err)
		}
	}
}

func TestExpandValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no algorithms", func(s *Spec) { s.Algorithms = nil }, "no algorithms"},
		{"no sides", func(s *Spec) { s.Sides = nil }, "no sides"},
		{"no trials", func(s *Spec) { s.Trials = nil }, "no trial counts"},
		{"bad algorithm", func(s *Spec) { s.Algorithms = []string{"nope"} }, "algorithm"},
		{"bad side", func(s *Spec) { s.Sides = []int{0} }, "invalid side"},
		{"bad trials", func(s *Spec) { s.Trials = []int{-1} }, "invalid trial count"},
		{"bad workload", func(s *Spec) { s.Workloads = []string{"gauss"} }, "unknown workload"},
		{"duplicate cells", func(s *Spec) { s.Sides = []int{4, 4} }, "duplicate cell"},
	}
	for _, tc := range cases {
		s := gridSpec()
		tc.mut(&s)
		if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandDefaultWorkload(t *testing.T) {
	s := gridSpec()
	s.Workloads = nil
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Workload != WorkloadPerm || c.Spec.ZeroOne {
			t.Fatalf("default workload cell %s not perm", c)
		}
	}
}

func TestIDContentAddressing(t *testing.T) {
	a, err := gridSpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := gridSpec().ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same spec, different IDs: %s vs %s", a, b)
	}
	if !strings.HasPrefix(a, "c-") || len(a) != 2+32 {
		t.Fatalf("ID %q has the wrong shape", a)
	}

	// Every identity-bearing change moves the ID.
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "other" },
		func(s *Spec) { s.Algorithms = []string{"snake-a"} },
		func(s *Spec) { s.Sides = []int{4, 16} },
		func(s *Spec) { s.Trials = []int{9} },
		func(s *Spec) { s.Workloads = []string{WorkloadPerm} },
		func(s *Spec) { s.Seed = 8 },
		func(s *Spec) { s.MaxSteps = 100000 },
	}
	for i, mut := range mutations {
		s := gridSpec()
		mut(&s)
		got, err := s.ID()
		if err != nil {
			t.Fatal(err)
		}
		if got == a {
			t.Errorf("mutation %d did not change the ID", i)
		}
	}

	// Seed 0 and the canonical seed 1 are the same campaign, like the
	// cell hashes they fold.
	s0, s1 := gridSpec(), gridSpec()
	s0.Seed, s1.Seed = 0, 1
	id0, _ := s0.ID()
	id1, _ := s1.ID()
	if id0 != id1 {
		t.Fatal("seed 0 and canonical seed 1 produced different IDs")
	}
}
