package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/mcbatch"
)

// testKey builds a distinct key from an integer.
func testKey(i int) mcbatch.Key {
	var k mcbatch.Key
	copy(k[:], fmt.Sprintf("key-%08d", i))
	return k
}

func testPayload(i int) []byte {
	return []byte(fmt.Sprintf("{\"cell\":%d,\"body\":%q}\n", i, bytes.Repeat([]byte{'x'}, i%17)))
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := OpenOptions(dir, opts)
	if err != nil {
		t.Fatalf("OpenOptions(%q): %v", dir, err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if got := s.Len(); got != 50 {
		t.Fatalf("Len = %d, want 50", got)
	}
	for i := 0; i < 50; i++ {
		got, ok, err := s.Get(testKey(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d) = ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("Get(%d) payload mismatch:\n got %q\nwant %q", i, got, testPayload(i))
		}
	}
	if _, ok, err := s.Get(testKey(999)); ok || err != nil {
		t.Fatalf("Get(absent) = ok=%v err=%v, want miss", ok, err)
	}
	if !s.Has(testKey(7)) || s.Has(testKey(999)) {
		t.Fatal("Has gave the wrong answer")
	}
}

func TestReopenPreservesEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if st := r.Stats(); st.RecoveredBytes != 0 {
		t.Fatalf("clean reopen recovered %d bytes, want 0", st.RecoveredBytes)
	}
	for i := 0; i < 20; i++ {
		got, ok, err := r.Get(testKey(i))
		if err != nil || !ok || !bytes.Equal(got, testPayload(i)) {
			t.Fatalf("after reopen Get(%d) = %q ok=%v err=%v", i, got, ok, err)
		}
	}
}

func TestOverwriteLastWins(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	k := testKey(1)
	if err := s.Put(k, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, []byte("new-longer-payload")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(k)
	if !ok || string(got) != "new-longer-payload" {
		t.Fatalf("Get after overwrite = %q ok=%v", got, ok)
	}
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
	if st.DeadBytes == 0 {
		t.Fatal("overwrite accounted no dead bytes")
	}
	s.Close()

	// The replay on reopen must apply records in order: last write wins.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	got, ok, _ = r.Get(k)
	if !ok || string(got) != "new-longer-payload" {
		t.Fatalf("Get after reopen = %q ok=%v", got, ok)
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	// A tiny floor so the dead>live trigger fires within the test.
	s := mustOpen(t, dir, Options{CompactMinBytes: 1, NoSync: true})
	k := testKey(0)
	big := bytes.Repeat([]byte{'p'}, 1024)
	for i := 0; i < 8; i++ {
		if err := s.Put(k, append(big, byte('0'+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testKey(100+i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("rewrite-heavy load never compacted: %+v", st)
	}
	if st.DeadBytes >= st.LiveBytes*2 {
		t.Fatalf("dead bytes not reclaimed: %+v", st)
	}
	// Everything still readable after the log was rewritten.
	got, ok, err := s.Get(k)
	if err != nil || !ok || got[len(got)-1] != '7' {
		t.Fatalf("Get after compaction = %q ok=%v err=%v", got, ok, err)
	}
	for i := 0; i < 5; i++ {
		if _, ok, _ := s.Get(testKey(100 + i)); !ok {
			t.Fatalf("key %d lost by compaction", 100+i)
		}
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got, ok, _ := r.Get(k); !ok || got[len(got)-1] != '7' {
		t.Fatalf("Get after compaction+reopen = %q ok=%v", got, ok)
	}
}

func TestForcedCompactIsDeterministic(t *testing.T) {
	// Two stores loaded with the same contents in different orders must
	// compact to byte-identical logs (sorted key order, no map-order leak).
	dirA, dirB := t.TempDir(), t.TempDir()
	a := mustOpen(t, dirA, Options{NoSync: true})
	b := mustOpen(t, dirB, Options{NoSync: true})
	for i := 0; i < 30; i++ {
		if err := a.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 29; i >= 0; i-- {
		if err := b.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	rawA, err := os.ReadFile(filepath.Join(dirA, logName))
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := os.ReadFile(filepath.Join(dirB, logName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("compacted logs differ: %d vs %d bytes", len(rawA), len(rawB))
	}
}

func TestRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("not a meshsort store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOptions(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign file")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
	if err := s.Put(testKey(1), []byte("x")); err == nil {
		t.Fatal("Put after Close succeeded")
	}
	if _, _, err := s.Get(testKey(1)); err == nil {
		t.Fatal("Get after Close succeeded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{NoSync: true, CompactMinBytes: 1})
	defer s.Close()
	const writers, perWriter = 4, 64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := testKey(w*perWriter + i)
				if err := s.Put(k, testPayload(i)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, ok, err := s.Get(k); !ok || err != nil {
					t.Errorf("Get just-put key: ok=%v err=%v", ok, err)
					return
				}
				// Rewrite a shared key to exercise compaction under load.
				if err := s.Put(testKey(0), testPayload(i)); err != nil {
					t.Errorf("Put shared: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
}
