// Package store is the daemon's durable result store: a dependency-free
// embedded log that maps a canonical batch key (mcbatch.Spec.Hash) to the
// exact serialized result bytes of that batch, surviving process restarts
// and crashes. It is what turns the serve layer's in-memory LRU into a
// read-through/write-behind cache and what lets a sweep campaign resume
// after a crash by skipping cells that already reached disk.
//
// Layout: one append-only record log (meshstore.log) plus an in-memory
// index rebuilt by scanning the log on Open. Each record is
// length-prefixed, carries a CRC-32C checksum over its key and payload,
// and is fsync'd before Put returns, so a record either exists completely
// or not at all:
//
//	header:  16 bytes  "meshsortstore\x00v1"
//	record:  u32 payload length (big endian)
//	         u32 CRC-32C over key||payload
//	         32-byte key
//	         payload bytes
//
// Recovery on Open is torn-tail truncation: the log is scanned record by
// record and cut at the first incomplete or checksum-failing record, so a
// crash mid-append (the only write the store ever does) loses at most the
// record being appended — everything fsync'd before it survives intact.
//
// Updates append a fresh record; the index keeps the newest offset per
// key, and the bytes shadowed by rewrites are tracked as dead. When dead
// bytes outgrow live bytes (and a floor), Put compacts: live records are
// rewritten in sorted key order to a temp log which atomically replaces
// the old one. Compaction is synchronous and deterministic — no
// background goroutine, no clock — which keeps the package inside the
// repository's detrand/leakcheck invariants with zero exemptions.
//
// The store promises byte-for-byte identity: Get returns exactly the
// bytes Put stored, and because the key is the canonical content address
// of a batch (see docs/INVARIANTS.md, cache-key contract), identical
// specs are served byte-identically across restarts.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/mcbatch"
)

// logName is the record log's file name inside the store directory.
const logName = "meshstore.log"

// compactName is the temporary log compaction writes before the rename.
const compactName = "meshstore.log.compact"

// logMagic is the 16-byte header identifying a record log and its format
// version. A future format change bumps the version byte and migrates on
// Open; an unrecognized header is an error, never a silent reinterpret.
var logMagic = [16]byte{'m', 'e', 's', 'h', 's', 'o', 'r', 't', 's', 't', 'o', 'r', 'e', 0, 'v', '1'}

// recordHeaderSize is the fixed prefix of one record: u32 payload length,
// u32 CRC-32C, 32-byte key. Typed int64 because it only ever participates
// in file-offset arithmetic.
const recordHeaderSize int64 = 4 + 4 + int64(len(mcbatch.Key{}))

// maxPayload bounds one record's payload. Result payloads are small JSON
// documents (a few KB); the bound exists so a corrupt length prefix found
// mid-scan is recognized as corruption instead of a 4 GB allocation.
const maxPayload = 1 << 26 // 64 MiB

// crcTable is the Castagnoli polynomial table shared by all records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadHeader reports a log whose magic/version header is not ours.
var ErrBadHeader = errors.New("store: log header is not a meshsortstore v1 log")

// ErrClosed reports use of a store after Close.
var ErrClosed = errors.New("store: closed")

// Options tunes a store. The zero value is the durable default.
type Options struct {
	// NoSync skips the fsync after each Put. Only tests and bulk loads
	// that can afford to lose the tail should set it; the crash-recovery
	// guarantee ("every Put that returned survives") needs the sync.
	NoSync bool
	// CompactFactor triggers compaction when deadBytes > CompactFactor ×
	// liveBytes (and deadBytes exceeds CompactMinBytes). 0 means 1.
	CompactFactor int
	// CompactMinBytes is the dead-byte floor below which compaction never
	// runs, so small stores don't churn. 0 means 1 MiB.
	CompactMinBytes int64
}

func (o Options) withDefaults() Options {
	if o.CompactFactor <= 0 {
		o.CompactFactor = 1
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = 1 << 20
	}
	return o
}

// entry locates one live record's payload in the log.
type entry struct {
	off int64 // payload offset
	len int64 // payload length
}

// Stats is a snapshot of the store's size and maintenance counters, the
// source of the daemon's store gauges in /metrics.
type Stats struct {
	// Entries is the number of live keys.
	Entries int
	// LiveBytes is the total record size (header + payload) of live
	// records — the size a freshly compacted log would have, past the
	// file header.
	LiveBytes int64
	// DeadBytes is the record bytes shadowed by rewrites of the same key.
	DeadBytes int64
	// LogBytes is the current size of the log file.
	LogBytes int64
	// Puts counts appends since Open.
	Puts int64
	// Compactions counts compaction runs since Open.
	Compactions int64
	// RecoveredBytes is the size of the torn tail Open truncated, 0 for a
	// clean log.
	RecoveredBytes int64
}

// Store is the embedded persistent result store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu   sync.RWMutex
	f    *os.File // guarded by mu (replaced by compaction)
	size int64    // log file size. guarded by mu
	idx  map[mcbatch.Key]entry
	live int64 // live record bytes (header+payload). guarded by mu
	dead int64 // shadowed record bytes. guarded by mu

	puts        int64 // guarded by mu
	compactions int64 // guarded by mu
	recovered   int64 // guarded by mu
	closed      bool  // guarded by mu
}

// Open opens (creating if necessary) the store in dir with default
// Options.
func Open(dir string) (*Store, error) { return OpenOptions(dir, Options{}) }

// OpenOptions opens the store in dir. The directory is created if absent.
// An existing log is scanned to rebuild the index; a torn tail (crash
// mid-append) is truncated away, and the byte count removed is reported
// in Stats.RecoveredBytes.
func OpenOptions(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, f: f, idx: make(map[mcbatch.Key]entry)}
	if err := s.recoverLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recoverLocked scans the log, rebuilds the index, and truncates the torn
// tail. Called from OpenOptions before the Store is shared, so the
// caller's exclusivity stands in for holding s.mu.
func (s *Store) recoverLocked() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	logSize := fi.Size()

	// Empty file: write the header. A file shorter than the header, or
	// with the wrong magic, is not ours — refuse rather than overwrite.
	if logSize == 0 {
		if _, err := s.f.Write(logMagic[:]); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := s.syncLogLocked(); err != nil {
			return err
		}
		if err := syncDir(s.dir); err != nil {
			return err
		}
		s.size = int64(len(logMagic))
		return nil
	}
	var magic [len(logMagic)]byte
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, int64(len(magic))), magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if magic != logMagic {
		return ErrBadHeader
	}

	pos := int64(len(logMagic))
	var hdr [recordHeaderSize]byte
	for pos < logSize {
		// A record that does not fit completely, or whose checksum fails,
		// marks the valid prefix's end: truncate there. With fsync-per-Put
		// only the final record can be torn, so nothing durable is lost.
		if logSize-pos < recordHeaderSize {
			break
		}
		if _, err := s.f.ReadAt(hdr[:], pos); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		plen := int64(binary.BigEndian.Uint32(hdr[0:4]))
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if plen > maxPayload || logSize-pos-recordHeaderSize < plen {
			break
		}
		payload := make([]byte, plen)
		if _, err := s.f.ReadAt(payload, pos+recordHeaderSize); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		crc := crc32.Update(crc32.Checksum(hdr[8:], crcTable), crcTable, payload)
		if crc != sum {
			break
		}
		var key mcbatch.Key
		copy(key[:], hdr[8:])
		recSize := recordHeaderSize + plen
		if old, ok := s.idx[key]; ok {
			s.dead += recordHeaderSize + old.len
			s.live -= recordHeaderSize + old.len
		}
		s.idx[key] = entry{off: pos + recordHeaderSize, len: plen}
		s.live += recSize
		pos += recSize
	}
	if pos < logSize {
		if err := s.f.Truncate(pos); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := s.syncLogLocked(); err != nil {
			return err
		}
		s.recovered = logSize - pos
	}
	s.size = pos
	return nil
}

// Close syncs and closes the log. Further calls to any method return
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLogLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Has reports whether key has a stored payload.
func (s *Store) Has(key mcbatch.Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return false
	}
	_, ok := s.idx[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Get returns a copy of the payload stored under key. The second result
// is false when the key is absent.
func (s *Store) Get(key mcbatch.Key) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, ok := s.idx[key]
	if !ok {
		return nil, false, nil
	}
	payload := make([]byte, e.len)
	if _, err := s.f.ReadAt(payload, e.off); err != nil {
		return nil, false, fmt.Errorf("store: reading %s: %w", key, err)
	}
	return payload, true, nil
}

// Put durably stores payload under key, replacing any previous payload.
// When Put returns nil the record has been fsync'd (unless Options.NoSync)
// and will survive a crash. Put may run a synchronous compaction when the
// dead-byte policy triggers.
func (s *Store) Put(key mcbatch.Key, payload []byte) error {
	if int64(len(payload)) > maxPayload {
		return fmt.Errorf("store: payload of %d bytes exceeds the %d-byte record bound", len(payload), maxPayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	rec := appendRecord(make([]byte, 0, int(recordHeaderSize)+len(payload)), key, payload)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.syncLogLocked(); err != nil {
		return err
	}
	if old, ok := s.idx[key]; ok {
		s.dead += recordHeaderSize + old.len
		s.live -= recordHeaderSize + old.len
	}
	s.idx[key] = entry{off: s.size + recordHeaderSize, len: int64(len(payload))}
	s.live += int64(len(rec))
	s.size += int64(len(rec))
	s.puts++
	if s.dead > s.opts.CompactMinBytes && s.dead > int64(s.opts.CompactFactor)*s.live {
		return s.compactLocked()
	}
	return nil
}

// Compact rewrites the log to live records only, reclaiming dead bytes.
// It runs automatically from Put under the Options policy; calling it
// directly forces a pass.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked rewrites live records, in sorted key order, into a temp
// log that atomically replaces the current one. Sorted order makes the
// compacted file a deterministic function of the store's contents (map
// iteration order never reaches the disk), which the recovery tests rely
// on. Callers hold s.mu.
func (s *Store) compactLocked() error {
	keys := make([]mcbatch.Key, 0, len(s.idx))
	for k := range s.idx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for n := range a {
			if a[n] != b[n] {
				return a[n] < b[n]
			}
		}
		return false
	})

	tmpPath := filepath.Join(s.dir, compactName)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after the rename succeeds

	newIdx := make(map[mcbatch.Key]entry, len(keys))
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, logMagic[:]...)
	pos := int64(len(logMagic))
	for _, k := range keys {
		e := s.idx[k]
		payload := make([]byte, e.len)
		if _, err := s.f.ReadAt(payload, e.off); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction read: %w", err)
		}
		buf = appendRecord(buf, k, payload)
		newIdx[k] = entry{off: pos + recordHeaderSize, len: e.len}
		pos += recordHeaderSize + e.len
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction write: %w", err)
	}
	if !s.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compaction sync: %w", err)
		}
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, logName)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compaction rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		tmp.Close()
		return err
	}
	old := s.f
	s.f = tmp
	old.Close()
	s.idx = newIdx
	s.size = pos
	s.live = pos - int64(len(logMagic))
	s.dead = 0
	s.compactions++
	return nil
}

// Stats returns a snapshot of the store's sizes and counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Entries:        len(s.idx),
		LiveBytes:      s.live,
		DeadBytes:      s.dead,
		LogBytes:       s.size,
		Puts:           s.puts,
		Compactions:    s.compactions,
		RecoveredBytes: s.recovered,
	}
}

// appendRecord serializes one record onto buf.
func appendRecord(buf []byte, key mcbatch.Key, payload []byte) []byte {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(key[:], crcTable), crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, key[:]...)
	return append(buf, payload...)
}

// syncLogLocked fsyncs the log file unless Options.NoSync. Callers hold s.mu.
func (s *Store) syncLogLocked() error {
	if s.opts.NoSync {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-created or just-renamed log file
// entry is durable. Platforms that cannot sync directories (the error is
// EINVAL-shaped) are tolerated: the data file itself is still synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		// Some filesystems reject directory fsync; treat only real I/O
		// errors on a regular directory handle as fatal.
		if pe, ok := err.(*os.PathError); !ok || pe.Err.Error() != "invalid argument" {
			return fmt.Errorf("store: dir sync: %w", err)
		}
	}
	return nil
}
