package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeSeedLog builds a store with n records and returns the raw log
// bytes plus the offset where the final record begins.
func writeSeedLog(t *testing.T, n int) (raw []byte, lastRecOff int64) {
	t.Helper()
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	lastRecOff = s.size - recordHeaderSize - int64(len(testPayload(n-1)))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return raw, lastRecOff
}

// TestRecoveryTruncationSweep is the crash-recovery exhaustion test: the
// log is cut at every byte offset of the final record (simulating a crash
// at any point of the append) and Open must recover the valid prefix —
// all earlier records intact, the torn record dropped, no error.
func TestRecoveryTruncationSweep(t *testing.T) {
	const n = 6
	raw, lastRecOff := writeSeedLog(t, n)

	for cut := lastRecOff; cut < int64(len(raw)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenOptions(dir, Options{})
		if err != nil {
			t.Fatalf("cut at %d (of %d): Open failed: %v", cut, len(raw), err)
		}
		st := s.Stats()
		if st.Entries != n-1 {
			t.Fatalf("cut at %d: recovered %d entries, want %d", cut, st.Entries, n-1)
		}
		if cut > lastRecOff && st.RecoveredBytes != cut-lastRecOff {
			t.Fatalf("cut at %d: RecoveredBytes = %d, want %d", cut, st.RecoveredBytes, cut-lastRecOff)
		}
		for i := 0; i < n-1; i++ {
			got, ok, err := s.Get(testKey(i))
			if err != nil || !ok || !bytes.Equal(got, testPayload(i)) {
				t.Fatalf("cut at %d: record %d damaged: %q ok=%v err=%v", cut, i, got, ok, err)
			}
		}
		if _, ok, _ := s.Get(testKey(n - 1)); ok {
			t.Fatalf("cut at %d: torn final record still served", cut)
		}
		// The truncated store accepts appends again and they survive.
		if err := s.Put(testKey(n-1), testPayload(n-1)); err != nil {
			t.Fatalf("cut at %d: Put after recovery: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r := mustOpen(t, dir, Options{})
		if got, ok, _ := r.Get(testKey(n - 1)); !ok || !bytes.Equal(got, testPayload(n-1)) {
			t.Fatalf("cut at %d: re-appended record lost", cut)
		}
		r.Close()
	}
}

// TestRecoveryBitFlipInTail proves a checksum failure (not just a short
// read) also truncates: flip one payload byte of the final record.
func TestRecoveryBitFlipInTail(t *testing.T) {
	const n = 4
	raw, lastRecOff := writeSeedLog(t, n)
	corrupt := append([]byte(nil), raw...)
	corrupt[lastRecOff+recordHeaderSize] ^= 0x40 // first payload byte

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Entries != n-1 || st.RecoveredBytes == 0 {
		t.Fatalf("bit flip not truncated: %+v", st)
	}
}

// TestRecoveryInsaneLengthPrefix proves a corrupt length prefix is treated
// as a torn tail rather than a huge allocation.
func TestRecoveryInsaneLengthPrefix(t *testing.T) {
	raw, lastRecOff := writeSeedLog(t, 3)
	corrupt := append([]byte(nil), raw...)
	binary.BigEndian.PutUint32(corrupt[lastRecOff:], uint32(maxPayload+1))

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Entries != 2 {
		t.Fatalf("insane length prefix: recovered %d entries, want 2", st.Entries)
	}
}
