// Package procmesh simulates the paper's machine model literally: a mesh
// of processors, one goroutine per cell, exchanging values over channels
// along the comparison wires (including the row-major algorithms'
// wrap-around wires), with a barrier between synchronous steps.
//
// The centralized engine (internal/engine) is the fast path; this package
// exists to demonstrate that the comparator schedules behave identically
// when executed by genuinely communicating processors — no processor ever
// reads another's memory; values move only through channels. Tests confirm
// step counts and final grids are bit-identical to the array engine.
package procmesh

import (
	"fmt"
	"sync"

	"repro/internal/grid"
	"repro/internal/sched"
)

// role describes what one processor does during one phase of the schedule.
type role int

const (
	idle    role = iota // no comparison this phase
	keepMin             // exchange with partner, keep the smaller value
	keepMax             // exchange with partner, keep the larger value
)

// phasePlan is one processor's wiring for one phase: its role and the
// channels to its comparison partner.
type phasePlan struct {
	role role
	send chan<- int
	recv <-chan int
}

// processor is one mesh cell: its current value and its per-phase wiring.
type processor struct {
	value  int
	phases []phasePlan
}

// Result mirrors engine.Result for the fields procmesh can measure.
type Result struct {
	// Steps is the number of steps after which the mesh first matched the
	// target order.
	Steps int
	// Swaps is the total number of exchanges performed (counted on the
	// keep-min side of each wire, so each exchange counts once).
	Swaps int64
	// Sorted reports whether the mesh reached target order within the cap.
	Sorted bool
}

// Run executes schedule s on g using one goroutine per processor. The grid
// is updated in place when the run completes. maxSteps of 0 uses a 6N+64
// cap; exceeding the cap returns an error.
//
// Execution model: per step, the coordinator broadcasts a "go" to every
// processor (a channel send), each processor with a comparison this phase
// exchanges values with its partner over dedicated channels and keeps the
// min or max according to its role, and all processors signal completion
// (the barrier). The coordinator then collects the values — processors
// double as their own memory — to test for completion.
func Run(g *grid.Grid, s sched.Schedule, maxSteps int) (Result, error) {
	rows, cols := s.Dims()
	if g.Rows() != rows || g.Cols() != cols {
		return Result{}, fmt.Errorf("procmesh: grid is %dx%d, schedule wants %dx%d",
			g.Rows(), g.Cols(), rows, cols)
	}
	if maxSteps == 0 {
		maxSteps = 6*g.Len() + 64
	}
	period := s.Period()

	// Build the processors and wire up each phase. For every comparator
	// (lo, hi) of phase p we create two channels: one per direction.
	procs := make([]*processor, g.Len())
	for i := range procs {
		procs[i] = &processor{
			value:  g.AtFlat(i),
			phases: make([]phasePlan, period),
		}
	}
	for p := 0; p < period; p++ {
		for _, cmp := range s.Step(p + 1) {
			loToHi := make(chan int, 1)
			hiToLo := make(chan int, 1)
			procs[cmp.Lo].phases[p] = phasePlan{role: keepMin, send: loToHi, recv: hiToLo}
			procs[cmp.Hi].phases[p] = phasePlan{role: keepMax, send: hiToLo, recv: loToHi}
		}
	}

	// Control channels: one "go" channel per processor carrying the phase
	// index (-1 terminates), one shared report channel delivering (id,
	// value, swapped) after each step.
	type report struct {
		id, value int
		swapped   bool
	}
	goCh := make([]chan int, len(procs))
	reports := make(chan report, len(procs))
	var wg sync.WaitGroup
	for i := range procs {
		goCh[i] = make(chan int, 1)
		wg.Add(1)
		go func(id int, pr *processor, steps <-chan int) {
			defer wg.Done()
			for phase := range steps {
				if phase < 0 {
					return
				}
				plan := pr.phases[phase]
				swapped := false
				switch plan.role {
				case keepMin:
					plan.send <- pr.value
					other := <-plan.recv
					if other < pr.value {
						pr.value = other
						swapped = true
					}
				case keepMax:
					plan.send <- pr.value
					other := <-plan.recv
					if other > pr.value {
						pr.value = other
					}
				}
				reports <- report{id, pr.value, swapped}
			}
		}(i, procs[i], goCh[i])
	}
	stop := func() {
		for _, ch := range goCh {
			ch <- -1
		}
		wg.Wait()
	}

	tr := grid.NewTracker(g, s.Order())
	snapshot := make([]int, len(procs))
	for i := range snapshot {
		snapshot[i] = procs[i].value
	}

	res := Result{}
	if tr.Sorted() {
		res.Sorted = true
		stop()
		return res, nil
	}
	for t := 1; t <= maxSteps; t++ {
		phase := (t - 1) % period
		for _, ch := range goCh {
			ch <- phase
		}
		for range procs {
			rep := <-reports
			snapshot[rep.id] = rep.value
			if rep.swapped {
				res.Swaps++
			}
		}
		// Re-derive sortedness from the collected snapshot.
		for i, v := range snapshot {
			g.SetFlat(i, v)
		}
		if g.IsSorted(s.Order()) {
			res.Steps = t
			res.Sorted = true
			stop()
			return res, nil
		}
	}
	stop()
	return res, fmt.Errorf("procmesh: %s did not sort within %d steps", s.Name(), maxSteps)
}
