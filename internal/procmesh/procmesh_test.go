package procmesh

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

func schedules(rows, cols int) []sched.Schedule {
	var out []sched.Schedule
	for _, name := range sched.Names() {
		if cols%2 != 0 && (name == "rm-rf" || name == "rm-cf") {
			continue
		}
		s, err := sched.ByName(name, rows, cols)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}

func TestProcMeshMatchesArrayEngine(t *testing.T) {
	// The goroutine-per-processor execution must produce exactly the same
	// step counts and final grids as the centralized engine.
	src := rng.New(31)
	for _, d := range [][2]int{{4, 4}, {6, 6}, {5, 5}, {4, 8}} {
		rows, cols := d[0], d[1]
		for _, s := range schedules(rows, cols) {
			for trial := 0; trial < 3; trial++ {
				seed := src.Uint64()
				gProc := workload.RandomPermutation(rng.New(seed), rows, cols)
				gArr := gProc.Clone()

				resProc, err := Run(gProc, s, 0)
				if err != nil {
					t.Fatalf("%s %dx%d: %v", s.Name(), rows, cols, err)
				}
				resArr, err := engine.Run(gArr, s, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if resProc.Steps != resArr.Steps {
					t.Fatalf("%s %dx%d: procmesh %d steps, engine %d steps",
						s.Name(), rows, cols, resProc.Steps, resArr.Steps)
				}
				if resProc.Swaps != resArr.Swaps {
					t.Fatalf("%s %dx%d: procmesh %d swaps, engine %d swaps",
						s.Name(), rows, cols, resProc.Swaps, resArr.Swaps)
				}
				if !gProc.Equal(gArr) {
					t.Fatalf("%s %dx%d: final grids differ", s.Name(), rows, cols)
				}
			}
		}
	}
}

func TestProcMeshSortsZeroOne(t *testing.T) {
	src := rng.New(9)
	s := sched.NewSnakeB(6, 6)
	for trial := 0; trial < 5; trial++ {
		alpha := rng.Intn(src, 37)
		g := workload.RandomZeroOne(src, 6, 6, alpha)
		res, err := Run(g, s, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sorted || !g.IsSorted(grid.Snake) {
			t.Fatalf("alpha=%d not sorted after %d steps", alpha, res.Steps)
		}
	}
}

func TestProcMeshSortedInput(t *testing.T) {
	s := sched.NewSnakeA(4, 4)
	g := workload.SortedGrid(4, 4, grid.Snake)
	res, err := Run(g, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || !res.Sorted {
		t.Fatalf("sorted input: %+v", res)
	}
}

func TestProcMeshDimensionMismatch(t *testing.T) {
	if _, err := Run(grid.New(4, 4), sched.NewSnakeA(6, 6), 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestProcMeshStepCap(t *testing.T) {
	// The no-wrap ablation never sorts the all-zero column; the cap must
	// trip and all goroutines must shut down cleanly.
	g := workload.AllZeroColumn(4, 4, 0)
	s, err := sched.ByName("rm-rf-nowrap", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, s, 64); err == nil {
		t.Fatal("expected step-cap error")
	}
}

func TestProcMeshWrapAround(t *testing.T) {
	// The wrap-around wires must function across goroutine boundaries:
	// Corollary 1's input sorts and needs at least 2N−4√N steps.
	g := workload.AllZeroColumn(6, 6, 0)
	s := sched.NewRowMajorRowFirst(6, 6)
	res, err := Run(g, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps < 2*36-4*6 {
		t.Fatalf("steps = %d below the Corollary 1 bound", res.Steps)
	}
}
