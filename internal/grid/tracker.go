package grid

import (
	"fmt"
	"sort"
)

// A Tracker detects completion — "the grid is now exactly in target
// order" — in O(1) work per swap, so the step loop never needs a full-grid
// rescan.
//
// Protocol: the engine calls Delta(g, i, j) immediately *after* swapping
// flat cells i and j; Delta is a pure function of the tracker's read-only
// tables and the grid, so it is safe to call concurrently from the workers
// of one step (the cells touched by distinct comparators of a step are
// disjoint). The per-worker sums are folded with Apply once the step's
// barrier is reached. Sorted reports whether the grid currently matches the
// target order.
type Tracker interface {
	// Delta returns the change in the misplacement measure caused by the
	// swap of flat cells i and j that has just been performed on g.
	Delta(g *Grid, i, j int) int
	// Apply folds an accumulated delta into the tracker state.
	Apply(delta int)
	// Sorted reports whether the grid is in target order.
	Sorted() bool
	// Misplaced returns the current misplacement measure (0 iff sorted).
	Misplaced() int
}

// DistinctTracker tracks grids whose values are all distinct (random
// permutations). The measure is the number of cells whose value is not at
// its unique home cell.
type DistinctTracker struct {
	home      []int // home[v-min] = flat index where value v belongs
	min       int
	misplaced int
}

// NewDistinctTracker builds a tracker for g under target order o. It panics
// if the grid contains duplicate values.
func NewDistinctTracker(g *Grid, o Order) *DistinctTracker {
	vals := g.Values()
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min+1 != len(vals) {
		panic(fmt.Sprintf("grid: DistinctTracker needs a permutation of a contiguous range, got span [%d,%d] for %d cells", min, max, len(vals)))
	}
	t := &DistinctTracker{home: make([]int, len(vals)), min: min}
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v-min] {
			panic(fmt.Sprintf("grid: DistinctTracker got duplicate value %d", v))
		}
		seen[v-min] = true
	}
	// The value of rank m (0-indexed) is min+m; its home is RankFlat(o, m).
	for m := 0; m < len(vals); m++ {
		t.home[m] = g.RankFlat(o, m)
	}
	// Initial misplacement count.
	for i, v := range g.cells {
		if t.home[v-min] != i {
			t.misplaced++
		}
	}
	return t
}

// Delta implements Tracker. Cells i and j have just been swapped.
func (t *DistinctTracker) Delta(g *Grid, i, j int) int {
	vi := g.cells[i] // value now at i (was at j before the swap)
	vj := g.cells[j]
	d := 0
	// Before the swap, i held vj and j held vi.
	if t.home[vj-t.min] != i {
		d--
	}
	if t.home[vi-t.min] != j {
		d--
	}
	if t.home[vi-t.min] != i {
		d++
	}
	if t.home[vj-t.min] != j {
		d++
	}
	return d
}

// Home exposes the tracker's read-only tables for fused executor loops:
// home[v-min] is the flat cell where value v belongs. The slice must not
// be modified.
func (t *DistinctTracker) Home() (home []int, min int) { return t.home, t.min }

// Apply implements Tracker.
func (t *DistinctTracker) Apply(delta int) { t.misplaced += delta }

// Sorted implements Tracker.
func (t *DistinctTracker) Sorted() bool { return t.misplaced == 0 }

// Misplaced implements Tracker.
func (t *DistinctTracker) Misplaced() int { return t.misplaced }

// ZeroOneTracker tracks 0-1 grids (the paper's A^01 matrices). A 0-1 grid
// is in target order iff no 1 occupies any of the first α rank positions,
// where α is the number of zeroes; the measure is the number of 1s inside
// that zero region.
type ZeroOneTracker struct {
	inZeroRegion []bool // indexed by flat cell index
	onesInRegion int
}

// NewZeroOneTracker builds a tracker for the 0-1 grid g under order o. It
// panics if g contains values other than 0 and 1.
func NewZeroOneTracker(g *Grid, o Order) *ZeroOneTracker {
	alpha := 0
	for _, v := range g.cells {
		switch v {
		case 0:
			alpha++
		case 1:
		default:
			panic(fmt.Sprintf("grid: ZeroOneTracker got non-0-1 value %d", v))
		}
	}
	t := &ZeroOneTracker{inZeroRegion: make([]bool, g.Len())}
	for m := 0; m < alpha; m++ {
		t.inZeroRegion[g.RankFlat(o, m)] = true
	}
	for i, v := range g.cells {
		if v == 1 && t.inZeroRegion[i] {
			t.onesInRegion++
		}
	}
	return t
}

// Delta implements Tracker. Cells i and j have just been swapped.
func (t *ZeroOneTracker) Delta(g *Grid, i, j int) int {
	// Only swaps of unequal values between region and non-region cells
	// change the measure.
	vi := g.cells[i]
	vj := g.cells[j]
	if vi == vj || t.inZeroRegion[i] == t.inZeroRegion[j] {
		return 0
	}
	// Exactly one of the two cells is in the zero region; the 1 either
	// moved into it or out of it.
	var oneAtRegion bool
	if t.inZeroRegion[i] {
		oneAtRegion = vi == 1
	} else {
		oneAtRegion = vj == 1
	}
	if oneAtRegion {
		return 1
	}
	return -1
}

// ZeroRegion exposes the tracker's read-only region table for fused
// executor loops: element i reports whether flat cell i lies in the
// first-alpha-ranks zero region. The slice must not be modified.
func (t *ZeroOneTracker) ZeroRegion() []bool { return t.inZeroRegion }

// Apply implements Tracker.
func (t *ZeroOneTracker) Apply(delta int) { t.onesInRegion += delta }

// Sorted implements Tracker.
func (t *ZeroOneTracker) Sorted() bool { return t.onesInRegion == 0 }

// Misplaced implements Tracker.
func (t *ZeroOneTracker) Misplaced() int { return t.onesInRegion }

// MultisetTracker tracks grids with arbitrary (possibly duplicated)
// values. Each rank position has a target value — the sorted multiset —
// and the measure is the number of cells whose value differs from their
// position's target. Zero measure is equivalent to being in target order;
// unlike DistinctTracker, cells holding equal values are interchangeable.
type MultisetTracker struct {
	target    []int // target[i] = value that flat cell i holds when sorted
	misplaced int
}

// NewMultisetTracker builds a tracker for g under target order o. It works
// for any values, at the cost of an O(N log N) setup sort.
func NewMultisetTracker(g *Grid, o Order) *MultisetTracker {
	vals := g.Values()
	sort.Ints(vals)
	t := &MultisetTracker{target: make([]int, g.Len())}
	for m, v := range vals {
		t.target[g.RankFlat(o, m)] = v
	}
	for i, v := range g.cells {
		if v != t.target[i] {
			t.misplaced++
		}
	}
	return t
}

// Delta implements Tracker. Cells i and j have just been swapped.
func (t *MultisetTracker) Delta(g *Grid, i, j int) int {
	vi := g.cells[i] // value now at i (was at j before the swap)
	vj := g.cells[j]
	d := 0
	if vj != t.target[i] {
		d--
	}
	if vi != t.target[j] {
		d--
	}
	if vi != t.target[i] {
		d++
	}
	if vj != t.target[j] {
		d++
	}
	return d
}

// Apply implements Tracker.
func (t *MultisetTracker) Apply(delta int) { t.misplaced += delta }

// Sorted implements Tracker.
func (t *MultisetTracker) Sorted() bool { return t.misplaced == 0 }

// Misplaced implements Tracker.
func (t *MultisetTracker) Misplaced() int { return t.misplaced }

// NewTracker picks the appropriate tracker for g: a ZeroOneTracker when all
// values are 0/1, a DistinctTracker for permutations of a contiguous range,
// and a MultisetTracker for anything else (duplicates, gaps).
func NewTracker(g *Grid, o Order) Tracker {
	zeroOne := true
	min, max := g.cells[0], g.cells[0]
	for _, v := range g.cells {
		if v != 0 && v != 1 {
			zeroOne = false
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if zeroOne {
		return NewZeroOneTracker(g, o)
	}
	if max-min+1 == len(g.cells) {
		// Candidate contiguous permutation; confirm distinctness.
		seen := make([]bool, len(g.cells))
		distinct := true
		for _, v := range g.cells {
			if seen[v-min] {
				distinct = false
				break
			}
			seen[v-min] = true
		}
		if distinct {
			return NewDistinctTracker(g, o)
		}
	}
	return NewMultisetTracker(g, o)
}
