package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewDimensions(t *testing.T) {
	g := New(3, 5)
	if g.Rows() != 3 || g.Cols() != 5 || g.Len() != 15 {
		t.Fatalf("got %dx%d len %d", g.Rows(), g.Cols(), g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		if g.AtFlat(i) != 0 {
			t.Fatalf("cell %d not zero", i)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestAtSetFlatRoundTrip(t *testing.T) {
	g := New(4, 6)
	k := 0
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			g.Set(r, c, k)
			k++
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			if got := g.At(r, c); got != g.Flat(r, c) {
				t.Fatalf("At(%d,%d)=%d want %d", r, c, got, g.Flat(r, c))
			}
			rr, cc := g.Cell(g.Flat(r, c))
			if rr != r || cc != c {
				t.Fatalf("Cell(Flat(%d,%d)) = (%d,%d)", r, c, rr, cc)
			}
		}
	}
}

func TestFromRowsAndEqual(t *testing.T) {
	g := FromRows([][]int{{1, 2}, {3, 4}})
	h := FromValues(2, 2, []int{1, 2, 3, 4})
	if !g.Equal(h) {
		t.Fatal("FromRows and FromValues disagree")
	}
	h.Set(1, 1, 9)
	if g.Equal(h) {
		t.Fatal("Equal missed a difference")
	}
	if g.Equal(New(2, 3)) {
		t.Fatal("Equal ignored dimensions")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := FromRows([][]int{{1, 2}, {3, 4}})
	h := g.Clone()
	h.Set(0, 0, 42)
	if g.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestRankCellRowMajor(t *testing.T) {
	g := New(3, 4)
	// Rank m lives at (m/4, m%4).
	for m := 0; m < 12; m++ {
		r, c := g.RankCell(RowMajor, m)
		if r != m/4 || c != m%4 {
			t.Fatalf("rank %d -> (%d,%d)", m, r, c)
		}
		if got := g.CellRank(RowMajor, r, c); got != m {
			t.Fatalf("CellRank inverse failed at m=%d: got %d", m, got)
		}
	}
}

func TestRankCellSnake(t *testing.T) {
	g := New(3, 3)
	// Snake on 3x3: ranks
	// 0 1 2
	// 5 4 3
	// 6 7 8
	want := [][2]int{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 1}, {1, 0},
		{2, 0}, {2, 1}, {2, 2},
	}
	for m, w := range want {
		r, c := g.RankCell(Snake, m)
		if r != w[0] || c != w[1] {
			t.Fatalf("snake rank %d -> (%d,%d), want (%d,%d)", m, r, c, w[0], w[1])
		}
		if got := g.CellRank(Snake, r, c); got != m {
			t.Fatalf("snake CellRank inverse failed at m=%d: got %d", m, got)
		}
	}
}

func TestRankCellInverseProperty(t *testing.T) {
	f := func(rows8, cols8 uint8, m16 uint16, snake bool) bool {
		rows := int(rows8%20) + 1
		cols := int(cols8%20) + 1
		g := New(rows, cols)
		m := int(m16) % g.Len()
		o := RowMajor
		if snake {
			o = Snake
		}
		r, c := g.RankCell(o, m)
		return r >= 0 && r < rows && c >= 0 && c < cols && g.CellRank(o, r, c) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSortedAndSorted(t *testing.T) {
	g := FromRows([][]int{{1, 2, 3}, {6, 5, 4}, {7, 8, 9}})
	if g.IsSorted(RowMajor) {
		t.Fatal("snake-ordered grid claimed row-major sorted")
	}
	if !g.IsSorted(Snake) {
		t.Fatal("snake-ordered grid not recognized")
	}
	rm := g.Sorted(RowMajor)
	if !rm.IsSorted(RowMajor) {
		t.Fatal("Sorted(RowMajor) not row-major sorted")
	}
	sn := g.Sorted(Snake)
	if !sn.Equal(g) {
		t.Fatalf("Sorted(Snake) changed an already snake-sorted grid:\n%v", sn)
	}
}

func TestReadOrder(t *testing.T) {
	g := FromRows([][]int{{1, 2}, {4, 3}})
	got := g.ReadOrder(Snake)
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadOrder(Snake) = %v", got)
		}
	}
}

func TestThreshold(t *testing.T) {
	g := FromRows([][]int{{1, 4}, {3, 2}})
	z := g.Threshold(2)
	want := FromRows([][]int{{0, 1}, {1, 0}})
	if !z.Equal(want) {
		t.Fatalf("Threshold(2) =\n%v", z)
	}
	if z.CountValue(0) != 2 || z.CountValue(1) != 2 {
		t.Fatal("CountValue wrong")
	}
}

func TestFindValue(t *testing.T) {
	g := FromRows([][]int{{5, 6}, {7, 8}})
	r, c, ok := g.FindValue(7)
	if !ok || r != 1 || c != 0 {
		t.Fatalf("FindValue(7) = (%d,%d,%v)", r, c, ok)
	}
	if _, _, ok := g.FindValue(99); ok {
		t.Fatal("FindValue found a missing value")
	}
}

func TestColumnStats(t *testing.T) {
	g := FromRows([][]int{{0, 1}, {0, 0}, {1, 1}})
	if got := g.ColumnZeroCount(0); got != 2 {
		t.Fatalf("ColumnZeroCount(0) = %d", got)
	}
	if got := g.ColumnWeight(1); got != 2 {
		t.Fatalf("ColumnWeight(1) = %d", got)
	}
}

func TestStringRendering(t *testing.T) {
	g := FromRows([][]int{{1, 10}, {100, 2}})
	want := "  1  10\n100   2\n"
	if got := g.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	z := FromRows([][]int{{0, 1}, {1, 0}})
	if got := z.CompactZeroOne(); got != ".#\n#.\n" {
		t.Fatalf("CompactZeroOne() = %q", got)
	}
}

func randomPermGrid(t *testing.T, seed uint64, rows, cols int) *Grid {
	t.Helper()
	vals := make([]int, rows*cols)
	rng.Perm(rng.New(seed), vals)
	return FromValues(rows, cols, vals)
}

func TestDistinctTrackerInitialCount(t *testing.T) {
	g := FromRows([][]int{{1, 2}, {3, 4}})
	tr := NewDistinctTracker(g, RowMajor)
	if !tr.Sorted() || tr.Misplaced() != 0 {
		t.Fatalf("sorted grid tracked as misplaced=%d", tr.Misplaced())
	}
	g2 := FromRows([][]int{{2, 1}, {3, 4}})
	tr2 := NewDistinctTracker(g2, RowMajor)
	if tr2.Sorted() || tr2.Misplaced() != 2 {
		t.Fatalf("misplaced = %d, want 2", tr2.Misplaced())
	}
}

func TestDistinctTrackerDeltaMatchesRescan(t *testing.T) {
	// Apply random swaps; tracker count must always equal a full recount.
	for _, o := range []Order{RowMajor, Snake} {
		g := randomPermGrid(t, 42, 5, 7)
		tr := NewDistinctTracker(g, o)
		src := rng.New(7)
		recount := func() int {
			n := 0
			for i := 0; i < g.Len(); i++ {
				if g.RankFlat(o, g.AtFlat(i)-1) != i {
					n++
				}
			}
			return n
		}
		for k := 0; k < 500; k++ {
			i := rng.Intn(src, g.Len())
			j := rng.Intn(src, g.Len())
			if i == j {
				continue
			}
			g.SwapFlat(i, j)
			tr.Apply(tr.Delta(g, i, j))
			if tr.Misplaced() != recount() {
				t.Fatalf("order %v swap %d: tracker=%d recount=%d", o, k, tr.Misplaced(), recount())
			}
			if tr.Sorted() != g.IsSorted(o) && tr.Sorted() {
				t.Fatalf("tracker claims sorted but grid is not")
			}
		}
	}
}

func TestDistinctTrackerSortedAgreement(t *testing.T) {
	// Drive a random grid to its target by greedy swaps; Sorted must flip
	// exactly when the grid reaches target order.
	g := randomPermGrid(t, 9, 4, 4)
	o := Snake
	tr := NewDistinctTracker(g, o)
	for m := 0; m < g.Len(); m++ {
		want := m + 1
		i := g.RankFlat(o, m)
		if g.AtFlat(i) == want {
			continue
		}
		// find want and swap it home
		var j int
		for j = 0; j < g.Len(); j++ {
			if g.AtFlat(j) == want {
				break
			}
		}
		g.SwapFlat(i, j)
		tr.Apply(tr.Delta(g, i, j))
	}
	if !tr.Sorted() || !g.IsSorted(o) {
		t.Fatalf("greedy sort failed: tracker=%d", tr.Misplaced())
	}
}

func TestDistinctTrackerPanicsOnDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate values")
		}
	}()
	NewDistinctTracker(FromRows([][]int{{1, 1}, {2, 3}}), RowMajor)
}

func TestZeroOneTrackerBasics(t *testing.T) {
	g := FromRows([][]int{{0, 0}, {1, 1}})
	tr := NewZeroOneTracker(g, RowMajor)
	if !tr.Sorted() {
		t.Fatalf("sorted 0-1 grid tracked as misplaced=%d", tr.Misplaced())
	}
	g2 := FromRows([][]int{{1, 0}, {0, 1}})
	tr2 := NewZeroOneTracker(g2, RowMajor)
	if tr2.Sorted() || tr2.Misplaced() != 1 {
		t.Fatalf("misplaced = %d, want 1", tr2.Misplaced())
	}
}

func TestZeroOneTrackerSnakeRegion(t *testing.T) {
	// 3 zeroes on a 2x2 snake: zero region is ranks 0,1,2 = cells
	// (0,0),(0,1),(1,1); the single 1 belongs at rank 3 = cell (1,0).
	g := FromRows([][]int{{0, 1}, {0, 0}})
	tr := NewZeroOneTracker(g, Snake)
	if tr.Sorted() {
		t.Fatal("grid with 1 at rank 1 claimed sorted")
	}
	g.SwapFlat(g.Flat(0, 1), g.Flat(1, 0))
	tr.Apply(tr.Delta(g, g.Flat(0, 1), g.Flat(1, 0)))
	if !tr.Sorted() {
		t.Fatalf("after fixing swap, misplaced=%d", tr.Misplaced())
	}
}

func TestZeroOneTrackerDeltaMatchesRescan(t *testing.T) {
	for _, o := range []Order{RowMajor, Snake} {
		src := rng.New(21)
		vals := make([]int, 6*6)
		for i := range vals {
			vals[i] = rng.Intn(src, 2)
		}
		g := FromValues(6, 6, vals)
		tr := NewZeroOneTracker(g, o)
		alpha := g.CountValue(0)
		recount := func() int {
			n := 0
			for m := 0; m < alpha; m++ {
				if g.AtFlat(g.RankFlat(o, m)) == 1 {
					n++
				}
			}
			return n
		}
		for k := 0; k < 500; k++ {
			i := rng.Intn(src, g.Len())
			j := rng.Intn(src, g.Len())
			if i == j {
				continue
			}
			g.SwapFlat(i, j)
			tr.Apply(tr.Delta(g, i, j))
			if tr.Misplaced() != recount() {
				t.Fatalf("order %v swap %d: tracker=%d recount=%d", o, k, tr.Misplaced(), recount())
			}
		}
	}
}

func TestZeroOneTrackerPanicsOnOtherValues(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on non-0-1 grid")
		}
	}()
	NewZeroOneTracker(FromRows([][]int{{0, 2}}), RowMajor)
}

func TestNewTrackerDispatch(t *testing.T) {
	if _, ok := NewTracker(FromRows([][]int{{0, 1}, {1, 0}}), RowMajor).(*ZeroOneTracker); !ok {
		t.Fatal("0-1 grid did not get a ZeroOneTracker")
	}
	if _, ok := NewTracker(FromRows([][]int{{1, 2}, {3, 4}}), RowMajor).(*DistinctTracker); !ok {
		t.Fatal("permutation grid did not get a DistinctTracker")
	}
}

func TestZeroOneSortedMeansMonotone(t *testing.T) {
	// Property: tracker says sorted <=> IsSorted for 0-1 grids.
	f := func(seed uint64, snake bool) bool {
		src := rng.New(seed)
		vals := make([]int, 4*4)
		for i := range vals {
			vals[i] = rng.Intn(src, 2)
		}
		g := FromValues(4, 4, vals)
		o := RowMajor
		if snake {
			o = Snake
		}
		tr := NewZeroOneTracker(g, o)
		return tr.Sorted() == g.IsSorted(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
