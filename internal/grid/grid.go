// Package grid implements the √N×√N processor mesh that the five
// two-dimensional bubble sorting algorithms of Savari (SPAA '93) run on.
//
// A Grid holds one value per cell. Rows are numbered top to bottom and
// columns left to right, 0-indexed internally (the paper is 1-indexed; the
// translation is noted wherever it matters). Two target orders are
// supported:
//
//   - RowMajor: the m-th smallest value ends in row ⌊(m−1)/C⌋+1, column
//     ((m−1) mod C)+1 (paper §1).
//   - Snake: as RowMajor on odd(1-indexed) rows, reversed on even rows
//     (paper §1, snakelike order).
//
// The package also provides misplacement trackers that detect "the mesh is
// now in target order" in O(1) work per swap, which keeps completion
// detection off the critical path of the step loop.
package grid

import (
	"fmt"
	"sort"
)

// Order identifies a target output ordering of the mesh.
type Order int

const (
	// RowMajor reads the mesh row by row, each row left to right.
	RowMajor Order = iota
	// Snake reads odd (1-indexed) rows left to right and even rows right
	// to left.
	Snake
)

// String returns the conventional name of the order.
func (o Order) String() string {
	switch o {
	case RowMajor:
		return "row-major"
	case Snake:
		return "snakelike"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Grid is an R×C mesh of integer values. The zero value is not usable; use
// New or FromValues.
type Grid struct {
	rows, cols int
	cells      []int // row-major backing store, len rows*cols
}

// New returns an R×C grid with all cells zero.
func New(rows, cols int) *Grid {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", rows, cols))
	}
	return &Grid{rows: rows, cols: cols, cells: make([]int, rows*cols)}
}

// NewSquare returns a side×side grid, the √N×√N mesh of the paper.
func NewSquare(side int) *Grid { return New(side, side) }

// FromValues returns an R×C grid initialized from vals in row-major order.
// The slice is copied.
func FromValues(rows, cols int, vals []int) *Grid {
	g := New(rows, cols)
	if len(vals) != len(g.cells) {
		panic(fmt.Sprintf("grid: FromValues got %d values for a %dx%d grid", len(vals), rows, cols))
	}
	copy(g.cells, vals)
	return g
}

// FromRows builds a grid from explicit rows; convenient in tests.
func FromRows(rows [][]int) *Grid {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("grid: FromRows needs at least one non-empty row")
	}
	g := New(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != g.cols {
			panic(fmt.Sprintf("grid: row %d has %d values, want %d", r, len(row), g.cols))
		}
		copy(g.cells[r*g.cols:], row)
	}
	return g
}

// Rows returns the number of rows.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the number of columns.
func (g *Grid) Cols() int { return g.cols }

// Len returns the number of cells, N.
func (g *Grid) Len() int { return len(g.cells) }

// At returns the value at row r, column c.
func (g *Grid) At(r, c int) int { return g.cells[r*g.cols+c] }

// Set stores v at row r, column c.
func (g *Grid) Set(r, c, v int) { g.cells[r*g.cols+c] = v }

// Flat returns the flat (row-major) index of cell (r,c).
func (g *Grid) Flat(r, c int) int { return r*g.cols + c }

// Cell returns the (row, column) of flat index i.
func (g *Grid) Cell(i int) (r, c int) { return i / g.cols, i % g.cols }

// AtFlat returns the value at flat index i.
func (g *Grid) AtFlat(i int) int { return g.cells[i] }

// SetFlat stores v at flat index i.
func (g *Grid) SetFlat(i, v int) { g.cells[i] = v }

// SwapFlat exchanges the values at flat indices i and j.
func (g *Grid) SwapFlat(i, j int) { g.cells[i], g.cells[j] = g.cells[j], g.cells[i] }

// Cells returns the grid's backing storage in flat (row-major) order.
// Mutating the returned slice mutates the grid. The hot executor loops in
// internal/engine read it once per step so the compiler can keep the slice
// header in registers instead of re-loading it through the Grid pointer on
// every comparator.
func (g *Grid) Cells() []int { return g.cells }

// Values returns a copy of the cell values in row-major order.
func (g *Grid) Values() []int {
	out := make([]int, len(g.cells))
	copy(out, g.cells)
	return out
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	return FromValues(g.rows, g.cols, g.cells)
}

// Equal reports whether g and h have identical dimensions and contents.
func (g *Grid) Equal(h *Grid) bool {
	if g.rows != h.rows || g.cols != h.cols {
		return false
	}
	for i, v := range g.cells {
		if v != h.cells[i] {
			return false
		}
	}
	return true
}

// RankCell returns the 0-indexed (row, col) where the value of 0-indexed
// rank m belongs under order o. Rank 0 is the smallest value's home, which
// for both orders is the top-left cell.
func (g *Grid) RankCell(o Order, m int) (r, c int) {
	r = m / g.cols
	c = m % g.cols
	if o == Snake && r%2 == 1 {
		c = g.cols - 1 - c
	}
	return r, c
}

// CellRank is the inverse of RankCell: the 0-indexed rank of cell (r,c)
// under order o.
func (g *Grid) CellRank(o Order, r, c int) int {
	if o == Snake && r%2 == 1 {
		c = g.cols - 1 - c
	}
	return r*g.cols + c
}

// RankFlat returns the flat cell index holding rank m under order o.
func (g *Grid) RankFlat(o Order, m int) int {
	r, c := g.RankCell(o, m)
	return r*g.cols + c
}

// ReadOrder returns the cell values read in rank order under o.
func (g *Grid) ReadOrder(o Order) []int {
	out := make([]int, len(g.cells))
	for m := range out {
		out[m] = g.cells[g.RankFlat(o, m)]
	}
	return out
}

// IsSorted reports whether reading the grid in rank order under o yields a
// non-decreasing sequence. This is a full O(N) scan; the step loop uses
// trackers instead.
func (g *Grid) IsSorted(o Order) bool {
	prev := g.cells[g.RankFlat(o, 0)]
	for m := 1; m < len(g.cells); m++ {
		v := g.cells[g.RankFlat(o, m)]
		if v < prev {
			return false
		}
		prev = v
	}
	return true
}

// Sorted returns a new grid containing the values of g arranged in target
// order o. It is the fixed point every run must reach.
func (g *Grid) Sorted(o Order) *Grid {
	vals := g.Values()
	sort.Ints(vals)
	out := New(g.rows, g.cols)
	for m, v := range vals {
		out.cells[out.RankFlat(o, m)] = v
	}
	return out
}

// Threshold returns the 0-1 projection of g: cells with value <= k become
// 0, the rest become 1. The paper's A^01 matrix is g.Threshold(N/2) for a
// permutation of 1..N.
func (g *Grid) Threshold(k int) *Grid {
	out := New(g.rows, g.cols)
	for i, v := range g.cells {
		if v > k {
			out.cells[i] = 1
		}
	}
	return out
}

// CountValue returns how many cells hold exactly v.
func (g *Grid) CountValue(v int) int {
	n := 0
	for _, x := range g.cells {
		if x == v {
			n++
		}
	}
	return n
}

// FindValue returns the (row, col) of the first cell holding v in row-major
// scan order, and ok=false if v is absent.
func (g *Grid) FindValue(v int) (r, c int, ok bool) {
	for i, x := range g.cells {
		if x == v {
			rr, cc := g.Cell(i)
			return rr, cc, true
		}
	}
	return 0, 0, false
}

// ColumnZeroCount returns the number of cells in column c whose value is 0.
// This is the paper's z_k statistic (Definition 2) on 0-1 grids, using
// 0-indexed columns.
func (g *Grid) ColumnZeroCount(c int) int {
	n := 0
	for r := 0; r < g.rows; r++ {
		if g.At(r, c) == 0 {
			n++
		}
	}
	return n
}

// ColumnWeight returns the number of cells in column c whose value is
// nonzero: the paper's w_k "weight" (Definitions 2-3) on 0-1 grids.
func (g *Grid) ColumnWeight(c int) int {
	return g.rows - g.ColumnZeroCount(c)
}
