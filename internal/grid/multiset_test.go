package grid

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMultisetTrackerSortedDetection(t *testing.T) {
	g := FromRows([][]int{{1, 1}, {2, 3}})
	tr := NewMultisetTracker(g, RowMajor)
	if !tr.Sorted() {
		t.Fatalf("sorted multiset grid tracked as misplaced=%d", tr.Misplaced())
	}
	g2 := FromRows([][]int{{3, 1}, {2, 1}})
	tr2 := NewMultisetTracker(g2, RowMajor)
	if tr2.Sorted() {
		t.Fatal("unsorted grid claimed sorted")
	}
}

func TestMultisetTrackerDuplicatesInterchangeable(t *testing.T) {
	// Two equal values swapped between their home cells: still sorted.
	g := FromRows([][]int{{5, 5}, {7, 9}})
	tr := NewMultisetTracker(g, RowMajor)
	if !tr.Sorted() {
		t.Fatal("duplicate home cells not interchangeable")
	}
	g.SwapFlat(0, 1)
	tr.Apply(tr.Delta(g, 0, 1))
	if !tr.Sorted() {
		t.Fatal("swapping equal values broke sortedness")
	}
}

func TestMultisetTrackerDeltaMatchesRescan(t *testing.T) {
	src := rng.New(77)
	for _, o := range []Order{RowMajor, Snake} {
		vals := make([]int, 30)
		for i := range vals {
			vals[i] = rng.Intn(src, 7) // heavy duplication
		}
		g := FromValues(5, 6, vals)
		tr := NewMultisetTracker(g, o)
		recount := func() int {
			n := 0
			probe := NewMultisetTracker(g, o)
			n = probe.Misplaced()
			return n
		}
		for k := 0; k < 400; k++ {
			i := rng.Intn(src, g.Len())
			j := rng.Intn(src, g.Len())
			if i == j {
				continue
			}
			g.SwapFlat(i, j)
			tr.Apply(tr.Delta(g, i, j))
			if tr.Misplaced() != recount() {
				t.Fatalf("order %v swap %d: tracker=%d recount=%d", o, k, tr.Misplaced(), recount())
			}
			if tr.Sorted() != g.IsSorted(o) {
				t.Fatalf("order %v: Sorted()=%v but IsSorted=%v", o, tr.Sorted(), g.IsSorted(o))
			}
		}
	}
}

func TestMultisetSortedEquivalenceProperty(t *testing.T) {
	// Zero misplacement <=> monotone in rank order, for arbitrary values.
	f := func(seed uint64, snake bool) bool {
		src := rng.New(seed)
		vals := make([]int, 16)
		for i := range vals {
			vals[i] = rng.Intn(src, 5)
		}
		g := FromValues(4, 4, vals)
		o := RowMajor
		if snake {
			o = Snake
		}
		return NewMultisetTracker(g, o).Sorted() == g.IsSorted(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTrackerDispatchMultiset(t *testing.T) {
	// Duplicates (not 0-1) must get the multiset tracker.
	if _, ok := NewTracker(FromRows([][]int{{2, 2}, {3, 4}}), RowMajor).(*MultisetTracker); !ok {
		t.Fatal("duplicated grid did not get a MultisetTracker")
	}
	// Non-contiguous distinct values too (DistinctTracker needs a
	// contiguous range).
	if _, ok := NewTracker(FromRows([][]int{{10, 20}, {30, 40}}), RowMajor).(*MultisetTracker); !ok {
		t.Fatal("gapped grid did not get a MultisetTracker")
	}
	// Contiguous permutations still get the distinct tracker.
	if _, ok := NewTracker(FromRows([][]int{{4, 2}, {3, 5}}), RowMajor).(*DistinctTracker); !ok {
		t.Fatal("contiguous permutation did not get a DistinctTracker")
	}
}
