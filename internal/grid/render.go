package grid

import (
	"fmt"
	"strings"
)

// String renders the grid as aligned rows of numbers, suitable for debug
// output and the example programs.
func (g *Grid) String() string {
	width := 1
	for _, v := range g.cells {
		if w := len(fmt.Sprint(v)); w > width {
			width = w
		}
	}
	var b strings.Builder
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%*d", width, g.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CompactZeroOne renders a 0-1 grid as rows of '.' (zero) and '#' (one),
// which makes the travelling zero-sets of the paper's lemmas visible at a
// glance.
func (g *Grid) CompactZeroOne() string {
	var b strings.Builder
	for r := 0; r < g.rows; r++ {
		for c := 0; c < g.cols; c++ {
			if g.At(r, c) == 0 {
				b.WriteByte('.')
			} else {
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
