package sortnet

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
	"repro/internal/zeroone"
)

func TestThresholdCommutation(t *testing.T) {
	// Compare-exchange commutes with monotone projection: running a step
	// then thresholding equals thresholding then running, for every step
	// of every algorithm.
	src := rng.New(3)
	for _, name := range sched.Names() {
		s, err := sched.ByName(name, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			g := workload.RandomPermutation(src, 6, 6)
			k := 1 + rng.Intn(src, 34)
			for t0 := 1; t0 <= 3*s.Period(); t0++ {
				projectedFirst := g.Threshold(k)
				engine.ApplyStep(projectedFirst, s.Step(t0))
				engine.ApplyStep(g, s.Step(t0))
				runFirst := g.Threshold(k)
				if !projectedFirst.Equal(runFirst) {
					t.Fatalf("%s step %d k=%d: projection does not commute", name, t0, k)
				}
			}
		}
	}
}

func TestStepsViaThresholdsMatchesDirect(t *testing.T) {
	// The threshold decomposition theorem, empirically: the direct step
	// count equals the max over 0-1 projections.
	src := rng.New(5)
	for _, name := range []string{"rm-rf", "rm-cf", "snake-a", "snake-b", "snake-c", "shearsort"} {
		s, err := sched.ByName(name, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			g := workload.RandomPermutation(src, 6, 6)
			direct, err := engine.Run(g.Clone(), s, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			viaThresh, err := StepsViaThresholds(g, s)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Steps != viaThresh {
				t.Fatalf("%s: direct %d != thresholds %d", name, direct.Steps, viaThresh)
			}
		}
	}
}

func TestStepsViaThresholdsProperty(t *testing.T) {
	s := sched.NewSnakeA(4, 4)
	f := func(seed uint64) bool {
		g := workload.RandomPermutation(rng.New(seed), 4, 4)
		direct, err := engine.Run(g.Clone(), s, engine.Options{})
		if err != nil {
			return false
		}
		via, err := StepsViaThresholds(g, s)
		return err == nil && via == direct.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactWorstCase2x2(t *testing.T) {
	for _, name := range []string{"rm-rf", "snake-a", "snake-b", "snake-c"} {
		s, err := sched.ByName(name, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		worst, witness, err := ExactWorstCaseSteps(s)
		if err != nil {
			t.Fatal(err)
		}
		if worst <= 0 || worst > 16 {
			t.Fatalf("%s: worst = %d", name, worst)
		}
		if witness == nil {
			t.Fatalf("%s: no witness", name)
		}
		// The witness must actually attain the worst case.
		res, err := engine.Run(witness.Clone(), s, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != worst {
			t.Fatalf("%s: witness takes %d steps, reported %d", name, res.Steps, worst)
		}
	}
}

func TestExactWorstCase4x4MeetsCorollary1(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	// For the row-major algorithms, the exact worst case over all inputs
	// must be at least Corollary 1's 2N − 4√N.
	for _, name := range []string{"rm-rf", "rm-cf"} {
		s, err := sched.ByName(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		worst, _, err := ExactWorstCaseSteps(s)
		if err != nil {
			t.Fatal(err)
		}
		bound := analysis.Corollary1WorstCase(16, 4)
		if worst < bound {
			t.Fatalf("%s: exact worst case %d < Corollary 1 bound %d", name, worst, bound)
		}
	}
}

func TestCertifyZeroOne(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	for _, name := range sched.Names() {
		s, err := sched.ByName(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := CertifyZeroOne(s, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// The no-wrap ablation must fail certification.
	s, err := sched.ByName("rm-rf-nowrap", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := CertifyZeroOne(s, 400); err == nil {
		t.Fatal("no-wrap ablation certified — it must not sort all inputs")
	}
}

func TestNetworkStats(t *testing.T) {
	s := sched.NewRowMajorRowFirst(4, 4)
	st := NetworkStats(s, 4)
	// One period: 8 (rows odd) + 8 (cols odd) + 4+3 (rows even + wrap) + 4
	// (cols even) = 27 comparators, 3 of them wrap wires.
	if st.Depth != 4 || st.Comparators != 27 || st.WrapWires != 3 {
		t.Fatalf("stats = %+v", st)
	}
	sn := NetworkStats(sched.NewSnakeA(4, 4), 4)
	if sn.WrapWires != 0 {
		t.Fatalf("snake-a has wrap wires: %+v", sn)
	}
}

func TestExactWorstCasePanicsOnBigMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, _, _ = ExactWorstCaseSteps(sched.NewSnakeA(6, 6))
}

func TestExhaustiveWitnessIsZeroColumnLike(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	// Informative: the rm-rf worst witness has a heavily loaded column,
	// echoing Corollary 1's construction. We only assert the worst case is
	// attained by SOME input at least as bad as the all-zero column.
	s := sched.NewRowMajorRowFirst(4, 4)
	worst, _, err := ExactWorstCaseSteps(s)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.AllZeroColumn(4, 4, 0)
	res, err := engine.Run(g, s, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if worst < res.Steps {
		t.Fatalf("worst %d < all-zero-column steps %d", worst, res.Steps)
	}
}

// TestThresholdTrinity is the three-way property behind the threshold
// kernel: for random permutations, the direct engine measurement, the
// scalar threshold decomposition (StepsViaThresholds), and the
// threshold-sliced kernel (zeroone.SortThresholds) must report the same
// step count — and the kernel's full Result must match the engine's.
func TestThresholdTrinity(t *testing.T) {
	src := rng.New(8)
	for _, name := range sched.Names() {
		for _, shape := range [][2]int{{4, 4}, {5, 6}, {3, 8}} {
			rows, cols := shape[0], shape[1]
			s, err := sched.Cached(name, rows, cols)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := zeroone.CachedSliced(name, rows, cols)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 3; trial++ {
				g := workload.RandomPermutation(src, rows, cols)
				direct, err := engine.Run(g.Clone(), s, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				via, err := StepsViaThresholds(g, s)
				if err != nil {
					t.Fatal(err)
				}
				gk := g.Clone()
				kern, err := zeroone.SortThresholds(gk, ss, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				if direct.Steps != via || direct != kern {
					t.Fatalf("%s %dx%d: direct %+v, thresholds %d, kernel %+v",
						name, rows, cols, direct, via, kern)
				}
			}
		}
	}
}

// FuzzThresholdDecomposition fuzzes the decomposition theorem end to
// end: an arbitrary byte-derived permutation must yield the same step
// count from the direct engine, the scalar per-threshold sweep, and the
// threshold-sliced kernel. Seeds use the same (algIdx, rows, cols, data)
// signature as the engine's FuzzSortsAnyInput corpus.
//
// Run with: go test -fuzz=FuzzThresholdDecomposition ./internal/sortnet/
func FuzzThresholdDecomposition(f *testing.F) {
	f.Add(uint8(0), uint8(4), uint8(4), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(uint8(2), uint8(3), uint8(5), []byte{0, 0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 0, 1, 1, 1})
	f.Add(uint8(5), uint8(1), uint8(9), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add(uint8(1), uint8(6), uint8(6), []byte{255, 0, 128, 7, 7, 7})
	f.Fuzz(func(t *testing.T, algIdx, rows, cols uint8, data []byte) {
		names := sched.Names()
		name := names[int(algIdx)%len(names)]
		r := 1 + int(rows)%8
		c := 1 + int(cols)%8
		if (name == "rm-rf" || name == "rm-cf") && c%2 != 0 {
			c++ // the row-major schedules require even columns by design
		}
		n := r * c
		// Derive a permutation from the fuzz bytes: identity shuffled by
		// data-directed transpositions, so any byte string is a valid input.
		g := grid.New(r, c)
		cells := g.Cells()
		for i := range cells {
			cells[i] = i + 1
		}
		for i, b := range data {
			j, k := i%n, int(b)%n
			cells[j], cells[k] = cells[k], cells[j]
		}

		s, err := sched.Cached(name, r, c)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := zeroone.CachedSliced(name, r, c)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := engine.Run(g.Clone(), s, engine.Options{})
		if err != nil {
			t.Fatalf("%s %dx%d: %v", name, r, c, err)
		}
		via, err := StepsViaThresholds(g, s)
		if err != nil {
			t.Fatal(err)
		}
		gk := g.Clone()
		kern, err := zeroone.SortThresholds(gk, ss, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Steps != via || direct != kern {
			t.Fatalf("%s %dx%d: direct %+v, thresholds %d, kernel %+v", name, r, c, direct, via, kern)
		}
	})
}
