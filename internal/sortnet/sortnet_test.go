package sortnet

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestThresholdCommutation(t *testing.T) {
	// Compare-exchange commutes with monotone projection: running a step
	// then thresholding equals thresholding then running, for every step
	// of every algorithm.
	src := rng.New(3)
	for _, name := range sched.Names() {
		s, err := sched.ByName(name, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			g := workload.RandomPermutation(src, 6, 6)
			k := 1 + rng.Intn(src, 34)
			for t0 := 1; t0 <= 3*s.Period(); t0++ {
				projectedFirst := g.Threshold(k)
				engine.ApplyStep(projectedFirst, s.Step(t0))
				engine.ApplyStep(g, s.Step(t0))
				runFirst := g.Threshold(k)
				if !projectedFirst.Equal(runFirst) {
					t.Fatalf("%s step %d k=%d: projection does not commute", name, t0, k)
				}
			}
		}
	}
}

func TestStepsViaThresholdsMatchesDirect(t *testing.T) {
	// The threshold decomposition theorem, empirically: the direct step
	// count equals the max over 0-1 projections.
	src := rng.New(5)
	for _, name := range []string{"rm-rf", "rm-cf", "snake-a", "snake-b", "snake-c", "shearsort"} {
		s, err := sched.ByName(name, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			g := workload.RandomPermutation(src, 6, 6)
			direct, err := engine.Run(g.Clone(), s, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			viaThresh, err := StepsViaThresholds(g, s)
			if err != nil {
				t.Fatal(err)
			}
			if direct.Steps != viaThresh {
				t.Fatalf("%s: direct %d != thresholds %d", name, direct.Steps, viaThresh)
			}
		}
	}
}

func TestStepsViaThresholdsProperty(t *testing.T) {
	s := sched.NewSnakeA(4, 4)
	f := func(seed uint64) bool {
		g := workload.RandomPermutation(rng.New(seed), 4, 4)
		direct, err := engine.Run(g.Clone(), s, engine.Options{})
		if err != nil {
			return false
		}
		via, err := StepsViaThresholds(g, s)
		return err == nil && via == direct.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExactWorstCase2x2(t *testing.T) {
	for _, name := range []string{"rm-rf", "snake-a", "snake-b", "snake-c"} {
		s, err := sched.ByName(name, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		worst, witness, err := ExactWorstCaseSteps(s)
		if err != nil {
			t.Fatal(err)
		}
		if worst <= 0 || worst > 16 {
			t.Fatalf("%s: worst = %d", name, worst)
		}
		if witness == nil {
			t.Fatalf("%s: no witness", name)
		}
		// The witness must actually attain the worst case.
		res, err := engine.Run(witness.Clone(), s, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Steps != worst {
			t.Fatalf("%s: witness takes %d steps, reported %d", name, res.Steps, worst)
		}
	}
}

func TestExactWorstCase4x4MeetsCorollary1(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	// For the row-major algorithms, the exact worst case over all inputs
	// must be at least Corollary 1's 2N − 4√N.
	for _, name := range []string{"rm-rf", "rm-cf"} {
		s, err := sched.ByName(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		worst, _, err := ExactWorstCaseSteps(s)
		if err != nil {
			t.Fatal(err)
		}
		bound := analysis.Corollary1WorstCase(16, 4)
		if worst < bound {
			t.Fatalf("%s: exact worst case %d < Corollary 1 bound %d", name, worst, bound)
		}
	}
}

func TestCertifyZeroOne(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	for _, name := range sched.Names() {
		s, err := sched.ByName(name, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := CertifyZeroOne(s, 0); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	// The no-wrap ablation must fail certification.
	s, err := sched.ByName("rm-rf-nowrap", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := CertifyZeroOne(s, 400); err == nil {
		t.Fatal("no-wrap ablation certified — it must not sort all inputs")
	}
}

func TestNetworkStats(t *testing.T) {
	s := sched.NewRowMajorRowFirst(4, 4)
	st := NetworkStats(s, 4)
	// One period: 8 (rows odd) + 8 (cols odd) + 4+3 (rows even + wrap) + 4
	// (cols even) = 27 comparators, 3 of them wrap wires.
	if st.Depth != 4 || st.Comparators != 27 || st.WrapWires != 3 {
		t.Fatalf("stats = %+v", st)
	}
	sn := NetworkStats(sched.NewSnakeA(4, 4), 4)
	if sn.WrapWires != 0 {
		t.Fatalf("snake-a has wrap wires: %+v", sn)
	}
}

func TestExactWorstCasePanicsOnBigMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_, _, _ = ExactWorstCaseSteps(sched.NewSnakeA(6, 6))
}

func TestExhaustiveWitnessIsZeroColumnLike(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	// Informative: the rm-rf worst witness has a heavily loaded column,
	// echoing Corollary 1's construction. We only assert the worst case is
	// attained by SOME input at least as bad as the all-zero column.
	s := sched.NewRowMajorRowFirst(4, 4)
	worst, _, err := ExactWorstCaseSteps(s)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.AllZeroColumn(4, 4, 0)
	res, err := engine.Run(g, s, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if worst < res.Steps {
		t.Fatalf("worst %d < all-zero-column steps %d", worst, res.Steps)
	}
}
