// Package sortnet views the paper's algorithms as what they are
// mathematically: oblivious comparator networks. That viewpoint yields two
// tools the rest of the reproduction builds on:
//
//   - The threshold decomposition theorem: a compare-exchange step commutes
//     with monotone 0-1 projections, so a permutation input is sorted at
//     step t iff every threshold projection is sorted at step t. Hence
//     Steps(permutation) = max over k of Steps(threshold_k(permutation)).
//     This is the quantitative sharpening of the classical 0-1 principle
//     that the paper's analysis implicitly relies on when it lower-bounds
//     permutation sorting time by A^01 sorting time.
//
//   - Exact exhaustive analysis for small meshes: because of the theorem,
//     the exact worst-case step count over ALL inputs equals the worst case
//     over the 2^N 0-1 inputs, which is enumerable for N ≤ ~20.
package sortnet

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/sched"
)

// StepsViaThresholds computes the number of steps schedule s needs on the
// permutation grid g by running every 0-1 threshold projection separately
// and taking the maximum — the threshold decomposition theorem. The grid is
// not modified. It exists to cross-validate the direct measurement; the
// direct path is faster.
func StepsViaThresholds(g *grid.Grid, s sched.Schedule) (int, error) {
	n := g.Len()
	max := 0
	for k := 1; k < n; k++ {
		proj := g.Threshold(k)
		res, err := engine.Run(proj, s, engine.Options{})
		if err != nil {
			return 0, fmt.Errorf("sortnet: threshold %d: %w", k, err)
		}
		if res.Steps > max {
			max = res.Steps
		}
	}
	return max, nil
}

// ExactWorstCaseSteps enumerates all 2^N 0-1 inputs of the schedule's mesh
// and returns the maximum step count together with one witness input. By
// the threshold decomposition theorem this maximum equals the worst case
// over all inputs whatsoever. It panics if the mesh has more than 24 cells
// (2^24 runs is where exhaustion stops being reasonable).
func ExactWorstCaseSteps(s sched.Schedule) (worst int, witness *grid.Grid, err error) {
	rows, cols := s.Dims()
	n := rows * cols
	if n > 24 {
		panic(fmt.Sprintf("sortnet: exhaustive sweep of a %d-cell mesh is infeasible", n))
	}
	vals := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		fillMask(vals, mask)
		g := grid.FromValues(rows, cols, vals)
		res, runErr := engine.Run(g, s, engine.Options{})
		if runErr != nil {
			return 0, nil, fmt.Errorf("sortnet: input %#x: %w", mask, runErr)
		}
		if res.Steps > worst {
			worst = res.Steps
			w := make([]int, n)
			fillMask(w, mask)
			witness = grid.FromValues(rows, cols, w)
		}
	}
	return worst, witness, nil
}

// fillMask writes the 0-1 input encoded by mask into vals, bit i to cell
// i. It runs 2^N times per exhaustive sweep, so it is pinned hot: the
// sweep's allocations stay in its callers, one slice per enumeration.
//
//meshlint:hot
func fillMask(vals []int, mask int) {
	for i := range vals {
		vals[i] = (mask >> i) & 1
	}
}

// CertifyZeroOne verifies that schedule s sorts every 0-1 input of its mesh
// within maxSteps steps (0 = engine default). Combined with the 0-1
// principle this certifies the schedule sorts all inputs of that mesh size.
// Same 24-cell feasibility limit as ExactWorstCaseSteps.
func CertifyZeroOne(s sched.Schedule, maxSteps int) error {
	rows, cols := s.Dims()
	n := rows * cols
	if n > 24 {
		panic(fmt.Sprintf("sortnet: exhaustive sweep of a %d-cell mesh is infeasible", n))
	}
	vals := make([]int, n)
	for mask := 0; mask < 1<<n; mask++ {
		fillMask(vals, mask)
		g := grid.FromValues(rows, cols, vals)
		if _, err := engine.Run(g, s, engine.Options{MaxSteps: maxSteps}); err != nil {
			return fmt.Errorf("sortnet: %s fails on 0-1 input %#x: %w", s.Name(), mask, err)
		}
	}
	return nil
}

// Stats describes the comparator network formed by the first T steps of a
// schedule.
type Stats struct {
	Depth       int // T: the number of synchronous stages
	Comparators int // total comparators across the T stages
	WrapWires   int // comparators connecting the first and last columns
}

// NetworkStats summarizes the first T steps of s as a comparator network.
func NetworkStats(s sched.Schedule, T int) Stats {
	_, cols := s.Dims()
	st := Stats{Depth: T}
	for t := 1; t <= T; t++ {
		for _, cmp := range s.Step(t) {
			st.Comparators++
			cLo := int(cmp.Lo) % cols
			cHi := int(cmp.Hi) % cols
			if (cLo == 0 && cHi == cols-1) || (cLo == cols-1 && cHi == 0) {
				st.WrapWires++
			}
		}
	}
	return st
}
