// Zeroone visualizes the 0-1 dynamics behind the paper's proofs: it runs
// the row-first row-major algorithm on the Corollary 1 worst case (an
// all-zero column) and shows the zero-set travelling left one column per
// row-sorting step, wrapping from column 1 to the last column, and losing
// at most one zero per wrap — exactly the mechanism of Lemmas 2 and 3.
//
//	go run ./examples/zeroone
package main

import (
	"fmt"
	"log"

	meshsort "repro"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/trace"
	"repro/internal/zeroone"
)

func main() {
	const side = 8
	g := meshsort.WorstCaseMesh(side) // column 0 all zeroes, rest ones
	fmt.Printf("worst-case input (Corollary 1): '.' = 0, '#' = 1\n\n%s\n", g.CompactZeroOne())

	tracer := trace.NewColumnSeriesTracer(g)
	snapshots := map[int]string{}
	res, err := core.Sort(g, core.RowMajorRowFirst, core.Options{
		Observer: func(t int, gg *grid.Grid) {
			if t <= 12 || t%32 == 0 {
				snapshots[t] = gg.CompactZeroOne()
			}
			tracer.Observe(t, gg)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("the zero column must disperse through the wrap-around wires:\n\n")
	for _, t := range []int{1, 3, 5, 7, 9, 11} {
		if s, ok := snapshots[t]; ok {
			fmt.Printf("after step %d:\n%s\n", t, s)
		}
	}

	n := side * side
	fmt.Printf("sorted after %d steps; Corollary 1 demands ≥ 2N − 4√N = %d\n\n",
		res.Steps, 2*n-4*side)

	// Show the per-column zero counts over the first cycles: the column
	// holding the big zero-set moves left by one column per row sort.
	series := tracer.Series()
	fmt.Println("zero count per column after each of the first 12 steps:")
	fmt.Print("step :")
	for c := 0; c < side; c++ {
		fmt.Printf(" %2d", c)
	}
	fmt.Println()
	for t := 0; t <= 12 && t < len(series); t++ {
		fmt.Printf("t=%3d:", t)
		for _, z := range series[t] {
			fmt.Printf(" %2d", z)
		}
		fmt.Println()
	}

	// And verify the travel lemmas held along the whole run.
	fmt.Println()
	replay := meshsort.WorstCaseMesh(side)
	s := core.RowMajorRowFirst.Schedule(side, side)
	violations := 0
	for t := 1; t <= res.Steps; t++ {
		before := replay.Clone()
		engine.ApplyStep(replay, s.Step(t))
		var err error
		switch t % 4 {
		case 1:
			err = zeroone.CheckLemma2(before, replay)
		case 2, 0:
			err = zeroone.CheckLemma1(before, replay)
		case 3:
			err = zeroone.CheckLemma3(before, replay)
		}
		if err != nil {
			violations++
		}
	}
	fmt.Printf("travel lemmas (1-3) checked on all %d steps: %d violations\n", res.Steps, violations)
}
