// Distribution plots the empirical distribution of sorting-step counts for
// each algorithm on random permutations — the concentration the paper's
// Theorems 3, 5, 8, 11 and 12 describe is directly visible: the mass sits
// in a narrow band at Θ(N), far above the Ω(√N) diameter bound, with
// essentially no left tail.
//
//	go run ./examples/distribution
package main

import (
	"fmt"
	"log"

	meshsort "repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const side = 16
	const trials = 400
	n := side * side

	fmt.Printf("distribution of steps to sort a random permutation (%d trials, %d×%d mesh, N=%d)\n\n",
		trials, side, side, n)

	growthX := []float64{}
	growth := map[byte][]float64{}
	marks := map[core.Algorithm]byte{
		core.RowMajorRowFirst: 'r',
		core.SnakeA:           'a',
		core.SnakeC:           'c',
		core.Shearsort:        's',
	}

	for _, alg := range meshsort.Algorithms() {
		src := rng.NewStream(4, uint64(alg))
		samples := make([]float64, trials)
		h := stats.NewHistogram(0, 2.2*float64(n), 22)
		for i := range samples {
			g := workload.RandomPermutation(src, side, side)
			res, err := core.Sort(g, alg, core.Options{})
			if err != nil {
				log.Fatal(err)
			}
			samples[i] = float64(res.Steps)
			h.Add(samples[i])
		}
		s := stats.Summarize(samples)
		fmt.Printf("%s: %s\n", alg, s)
		for b, c := range h.Counts {
			if c == 0 {
				continue
			}
			lo, hi := h.Bin(b)
			bar := ""
			for i := 0; i < c*60/trials; i++ {
				bar += "#"
			}
			fmt.Printf("  [%5.0f,%5.0f) %4d %s\n", lo, hi, c, bar)
		}
		fmt.Println()
	}

	// Growth curves across sizes for a few representatives.
	for _, side := range []int{8, 12, 16, 24, 32} {
		growthX = append(growthX, float64(side*side))
		for alg, mark := range marks {
			src := rng.NewStream(9, uint64(side)<<8|uint64(alg))
			sum := 0
			const t2 = 40
			for i := 0; i < t2; i++ {
				g := workload.RandomPermutation(src, side, side)
				res, err := core.Sort(g, alg, core.Options{})
				if err != nil {
					log.Fatal(err)
				}
				sum += res.Steps
			}
			growth[mark] = append(growth[mark], float64(sum)/t2)
		}
	}
	fmt.Println(report.ASCIIPlot(
		"mean steps vs N   (r = rm-rf, a = snake-a, c = snake-c, s = shearsort)",
		growthX, growth, 64, 16))
	fmt.Println("the bubble algorithms climb linearly in N; shearsort flattens — the paper's headline picture.")

	// Progress curves: misplaced cells over time on ONE shared input. The
	// bubble algorithms drain misplacement along a long ramp (the
	// travelling zero-sets cap per-step progress); shearsort collapses.
	fmt.Println()
	input := workload.RandomPermutation(rng.New(77), side, side)
	progress := map[byte][]float64{}
	maxLen := 0
	for alg, mark := range map[core.Algorithm]byte{core.SnakeA: 'a', core.Shearsort: 's'} {
		g := input.Clone()
		tr := trace.NewProgressTracer(g, alg.Order())
		if _, err := core.Sort(g, alg, core.Options{Observer: tr.Observe}); err != nil {
			log.Fatal(err)
		}
		series := tr.Series()
		curve := make([]float64, len(series))
		for i, v := range series {
			curve[i] = float64(v)
		}
		progress[mark] = curve
		if len(curve) > maxLen {
			maxLen = len(curve)
		}
	}
	xs := make([]float64, maxLen)
	for i := range xs {
		xs[i] = float64(i)
	}
	for mark, curve := range progress { // pad finished runs at zero
		for len(curve) < maxLen {
			curve = append(curve, 0)
		}
		progress[mark] = curve
	}
	fmt.Println(report.ASCIIPlot(
		"misplaced cells vs step   (a = snake-a, s = shearsort)",
		xs, progress, 64, 14))
}
