// Averagecase estimates the mean number of steps each algorithm needs on
// random permutations across mesh sizes and compares the estimates with the
// paper's lower bounds (Theorems 2, 4, 7, 10) — the headline reproduction
// of the paper, in one program.
//
//	go run ./examples/averagecase
package main

import (
	"fmt"
	"log"

	meshsort "repro"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	const trials = 60
	sides := []int{8, 16, 24, 32}

	type boundFn func(side int) float64
	bounds := map[core.Algorithm]boundFn{
		core.RowMajorRowFirst: func(s int) float64 { return analysis.Float(analysis.Theorem2BoundExact(s / 2)) },
		core.RowMajorColFirst: func(s int) float64 { return analysis.Float(analysis.Theorem4BoundExact(s / 2)) },
		core.SnakeA:           func(s int) float64 { return analysis.Float(analysis.Corollary3Bound(s)) },
		core.SnakeB:           func(s int) float64 { return analysis.Float(analysis.Theorem10Bound(s)) },
	}

	fmt.Println("mean steps to sort a random permutation (95% CI), vs the paper's lower bounds")
	fmt.Println()
	for _, alg := range meshsort.Algorithms() {
		fmt.Printf("%s:\n", alg)
		for _, side := range sides {
			n := side * side
			src := rng.NewStream(7, uint64(side)<<8|uint64(alg))
			samples := make([]int, trials)
			for i := range samples {
				g := workload.RandomPermutation(src, side, side)
				res, err := core.Sort(g, alg, core.Options{})
				if err != nil {
					log.Fatal(err)
				}
				samples[i] = res.Steps
			}
			s := stats.SummarizeInts(samples)
			line := fmt.Sprintf("  side %2d (N=%4d): %8.1f ±%5.1f steps  (%.3f·N)",
				side, n, s.Mean, s.CI95(), s.Mean/float64(n))
			if b, ok := bounds[alg]; ok {
				bb := b(side)
				status := "≥ bound ✓"
				if s.Mean < bb {
					status = "BELOW BOUND"
				}
				line += fmt.Sprintf("   bound %8.1f  %s", bb, status)
			} else {
				// Snake C: Theorem 12 gives a with-high-probability Θ(N)
				// statement rather than a mean bound.
				line += "   (Theorem 12: Θ(N) w.h.p.)"
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
}
