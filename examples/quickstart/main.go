// Quickstart: sort a random permutation on a mesh with each of the paper's
// five algorithms and print the step counts against the mesh diameter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	meshsort "repro"
)

func main() {
	const side = 16 // √N; the mesh holds N = 256 values
	fmt.Printf("sorting a random permutation of %d values on a %d×%d mesh\n\n", side*side, side, side)
	fmt.Printf("mesh diameter: %d steps (the naive lower bound)\n", 2*side-2)
	fmt.Printf("paper's result: every bubble generalization needs Θ(N) steps on average\n\n")

	for _, alg := range meshsort.Algorithms() {
		g := meshsort.RandomMesh(42, side)
		res, err := meshsort.Sort(g, alg, meshsort.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !g.IsSorted(alg.Order()) {
			log.Fatalf("%v failed to sort", alg)
		}
		fmt.Printf("%-28s %4d steps  (%.2f·N)  %d swaps\n",
			alg, res.Steps, float64(res.Steps)/float64(side*side), res.Swaps)
	}

	// The baseline shows what a good mesh sort achieves on the same input.
	g := meshsort.RandomMesh(42, side)
	res, err := meshsort.Sort(g, meshsort.Shearsort, meshsort.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %4d steps  (%.2f·N)  — Θ(√N·log N) baseline\n",
		"shearsort", res.Steps, float64(res.Steps)/float64(side*side))
}
