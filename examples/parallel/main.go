// Parallel demonstrates the worker-pool executor: the comparators of one
// synchronous mesh step are pairwise disjoint, so a step can be applied by
// several goroutines with a barrier per step — the simulator's analogue of
// the mesh's physical parallelism. Results are bit-identical to the
// sequential executor; only wall-clock time changes.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	meshsort "repro"
)

func main() {
	const side = 192 // N = 36864 — big enough for the pool to pay off
	fmt.Printf("sorting a %d×%d mesh (N = %d) with snake-a, GOMAXPROCS = %d\n\n",
		side, side, side*side, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("note: GOMAXPROCS is 1 — workers share one CPU, so expect no speedup here")
		fmt.Println()
	}

	ref := meshsort.RandomMesh(7, side)

	var baseline time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		g := ref.Clone()
		start := time.Now()
		res, err := meshsort.Sort(g, meshsort.SnakeA, meshsort.Options{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if workers == 1 {
			baseline = elapsed
		}
		fmt.Printf("workers=%d: %8v  (%d steps, %.2fx speedup)\n",
			workers, elapsed.Round(time.Millisecond), res.Steps,
			float64(baseline)/float64(elapsed))
	}

	// Identical results regardless of worker count.
	seq := ref.Clone()
	par := ref.Clone()
	resSeq, err := meshsort.Sort(seq, meshsort.SnakeA, meshsort.Options{})
	if err != nil {
		log.Fatal(err)
	}
	resPar, err := meshsort.Sort(par, meshsort.SnakeA, meshsort.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsequential and 8-worker runs identical: grids=%v steps=%v swaps=%v\n",
		seq.Equal(par), resSeq.Steps == resPar.Steps, resSeq.Swaps == resPar.Swaps)
}
