// Smallest visualizes the mechanism behind Theorem 12: in the third
// snakelike algorithm the smallest element walks backwards along the final
// snake order, its rank decreasing by exactly one per even walk step
// (Lemmas 12–13), so an element starting at final rank m needs at least
// 2m−3 steps — and with probability ≈ δ the rank is below δN, giving the
// Θ(N) with-high-probability bound.
//
//	go run ./examples/smallest
package main

import (
	"fmt"
	"log"

	meshsort "repro"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	const side = 8
	g := meshsort.RandomMesh(12345, side)
	r0, c0, _ := g.FindValue(1)
	m := g.CellRank(grid.Snake, r0, c0) + 1

	fmt.Printf("8×8 mesh, snakelike algorithm C\n")
	fmt.Printf("value 1 starts at (%d,%d) — final-order rank of that cell: m = %d\n", r0, c0, m)
	fmt.Printf("Lemmas 12-13 ⇒ at least 2m−3 = %d steps are needed\n\n", 2*m-3)

	tracer := trace.NewPositionTracer(g, 1)
	res, err := core.Sort(g, core.SnakeC, core.Options{Observer: tracer.Observe})
	if err != nil {
		log.Fatal(err)
	}

	pos := tracer.Positions()
	fmt.Println("the walk, sampled every two algorithm steps (Definition 11):")
	fmt.Println("walk i  after step  cell      snake rank of cell")
	for i := 0; 2*i < len(pos); i++ {
		p := pos[2*i]
		rank := g.CellRank(grid.Snake, p.Row, p.Col) + 1
		fmt.Printf("%6d  %10d  (%d,%d)  %4d\n", i, 2*i, p.Row, p.Col, rank)
		if rank == 1 {
			break
		}
	}
	fmt.Printf("\ntotal steps to sort: %d (≥ 2m−3 = %d ✓)\n", res.Steps, 2*m-3)

	// Empirical tail vs Theorem 12's bound over many random inputs.
	const trials = 400
	src := rng.New(99)
	n := side * side
	counts := map[float64]int{0.25: 0, 0.5: 0, 0.75: 0}
	for i := 0; i < trials; i++ {
		gg := workload.RandomPermutation(src, side, side)
		rr, err := core.Sort(gg, core.SnakeC, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		for delta := range counts {
			if float64(rr.Steps) < delta*float64(n) {
				counts[delta]++
			}
		}
	}
	fmt.Printf("\nTheorem 12 tail over %d random inputs (N = %d):\n", trials, n)
	for _, delta := range []float64{0.25, 0.5, 0.75} {
		emp := float64(counts[delta]) / trials
		bound := delta/2 + delta/(2*float64(n))
		fmt.Printf("  P[steps < %.2f·N] = %.3f   (bound %.3f)\n", delta, emp, bound)
	}
}
