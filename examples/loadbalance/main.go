// Loadbalance shows the mesh sort used the way the paper's introduction
// motivates it — as a primitive inside a parallel architecture. N tasks
// with skewed costs sit one per processor on a √N×√N mesh. Assigning work
// stripes of consecutive processors is only balanced if the costs are in
// sorted order, so the mesh first sorts the costs into snakelike order
// in-network (no central coordinator touches the data), and then each of
// the √N snake stripes holds costs of similar magnitude: interleaving the
// stripes across workers flattens the makespan.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"
	"log"

	meshsort "repro"
	"repro/internal/rng"
)

func main() {
	const side = 16 // 256 processors / tasks
	const workers = 8
	n := side * side

	// Skewed task costs: mostly cheap, a few very expensive (Zipf-ish).
	src := rng.New(2026)
	costs := make([]int, n)
	for i := range costs {
		r := rng.Intn(src, 100)
		switch {
		case r < 70:
			costs[i] = 1 + rng.Intn(src, 5)
		case r < 95:
			costs[i] = 10 + rng.Intn(src, 30)
		default:
			costs[i] = 100 + rng.Intn(src, 200)
		}
	}

	makespan := func(assign func(taskIdx int) int, vals []int) int {
		load := make([]int, workers)
		for i, c := range vals {
			load[assign(i)] += c
		}
		worst := 0
		for _, l := range load {
			if l > worst {
				worst = l
			}
		}
		return worst
	}
	total := 0
	for _, c := range costs {
		total += c
	}
	ideal := (total + workers - 1) / workers

	// Naive: contiguous blocks of the unsorted layout.
	blocks := func(i int) int { return i * workers / n }
	naive := makespan(blocks, costs)

	// Balanced: sort on the mesh, then deal the snake order round-robin.
	g := meshsort.FromValues(side, side, costs)
	res, err := meshsort.Sort(g, meshsort.SnakeA, meshsort.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sortedCosts := g.ReadOrder(meshsort.Snake)
	// Folded dealing over the sorted order (0..w−1, w−1..0, …) pairs each
	// expensive task with cheap ones on the same worker.
	folded := func(i int) int {
		k := i % (2 * workers)
		if k < workers {
			return k
		}
		return 2*workers - 1 - k
	}
	balanced := makespan(folded, sortedCosts)

	fmt.Printf("%d tasks on a %d×%d mesh, %d workers\n", n, side, side, workers)
	fmt.Printf("total cost %d, ideal makespan %d\n\n", total, ideal)
	fmt.Printf("naive contiguous blocks, unsorted:   makespan %4d  (%.2fx ideal)\n",
		naive, float64(naive)/float64(ideal))
	fmt.Printf("mesh-sorted (snake-a, %3d steps) + folded deal: makespan %4d  (%.2fx ideal)\n",
		res.Steps, balanced, float64(balanced)/float64(ideal))
	fmt.Printf("\nthe sort cost is %d compare-exchange steps — the paper's point is that\n", res.Steps)
	fmt.Printf("this bubble-style sort needs Θ(N) of them on average, while an optimal\n")
	fmt.Printf("mesh sort would need only Θ(√N·log N); run the shearsort baseline:\n")

	g2 := meshsort.FromValues(side, side, costs)
	res2, err := meshsort.Sort(g2, meshsort.Shearsort, meshsort.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shearsort does the same job in %d steps\n", res2.Steps)
}
