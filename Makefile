# Convenience targets for the meshsort reproduction.

GO ?= go

.PHONY: all build test test-race bench experiments experiments-quick lemmas fmt vet cover

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/engine/ ./internal/experiments/ ./internal/procmesh/

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

lemmas:
	$(GO) run ./cmd/lemmas -side 8 -trials 500

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./...
