# Convenience targets for the meshsort reproduction.

GO ?= go

.PHONY: all build test test-race bench bench-batch bench-kernel bench-zeroone bench-threshold bench-bigside bench-fabric experiments experiments-quick experiments-output lemmas fmt vet cover lint meshlint vet-perf serve-smoke store-smoke fabric-smoke

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/engine/ ./internal/experiments/ ./internal/procmesh/ \
		./internal/mcbatch/ ./internal/serve/ ./internal/kerneltest/ ./internal/fabric/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable speedup record for the batched trial engine and the
# bit-packed 0-1 kernel (writes BENCH_batch.json at the repo root).
bench-batch:
	$(GO) run ./cmd/benchbatch -suite batch -out BENCH_batch.json

# Span-kernel sweep: single-thread legacy vs generic vs span ns/trial per
# side, plus span throughput across GOMAXPROCS {1,2,4,8} (writes
# BENCH_kernel.json at the repo root). Pass BENCHFLAGS="-cpuprofile cpu.pb.gz"
# to capture a profile of the sweep.
bench-kernel:
	$(GO) run ./cmd/benchbatch -suite kernel -out BENCH_kernel.json $(BENCHFLAGS)

# 0-1 kernel-family sweep: cellwise vs cell-packed vs trial-sliced
# ns/trial per side, with a built-in lockstep-equivalence differential
# (writes BENCH_zeroone.json at the repo root).
bench-zeroone:
	$(GO) run ./cmd/benchbatch -suite zeroone -out BENCH_zeroone.json $(BENCHFLAGS)

# Exact-permutation executor sweep: span kernel vs threshold-sliced
# kernel vs the scalar per-threshold decomposition, with a built-in
# span/threshold differential and a measured tuner calibration table
# (writes BENCH_threshold.json at the repo root).
bench-threshold:
	$(GO) run ./cmd/benchbatch -suite threshold -out BENCH_threshold.json $(BENCHFLAGS)

# Large-mesh sharded span sweep: serial span baseline vs the sharded
# executor across shard counts and GOMAXPROCS, with a built-in
# serial-vs-sharded differential in every arm (writes BENCH_bigside.json
# at the repo root). The default sides {256,512,1024} take tens of
# minutes serially; pass BENCHFLAGS="-sides 64,128 -reps 1" for a quick
# look. Speedups are bounded by the host's core count.
bench-bigside:
	$(GO) run ./cmd/benchbatch -suite bigside -out BENCH_bigside.json $(BENCHFLAGS)

# Distributed trial fabric on loopback: 1/2/3 in-process worker daemons
# vs a single-process baseline, with every fleet's merged payload checked
# byte-for-byte against the single-process run (writes BENCH_fabric.json
# at the repo root). On a few-core host the report carries an honest
# caveat: the numbers are dispatch overhead, not scaling.
bench-fabric:
	$(GO) run ./cmd/benchbatch -suite fabric -out BENCH_fabric.json $(BENCHFLAGS)

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

# experiments-output regenerates the full experiments transcript locally.
# The file is gitignored: it is a build artifact of cmd/experiments, and
# the committed source of truth for the paper tables is EXPERIMENTS.md.
experiments-output:
	$(GO) run ./cmd/experiments > experiments_output.txt
	@echo "wrote experiments_output.txt"

lemmas:
	$(GO) run ./cmd/lemmas -side 8 -trials 500

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# meshlint runs only the project's own invariant-enforcing passes
# (oblivious, schedpurity, detrand, floateq, hotalloc, ctxflow,
# lockguard, leakcheck); see docs/INVARIANTS.md.
meshlint:
	$(GO) run ./cmd/meshlint ./...

# vet-perf is the performance-invariant gate: the eight meshlint passes
# plus the gcdiag escape/bounds-check manifest diff over the kernel hot
# files. The gcdiag half is pinned to one Go toolchain version and skips
# itself with a notice under any other, so this target is safe to run
# everywhere; CI runs it on the pinned toolchain where it bites.
vet-perf:
	$(GO) run ./cmd/meshlint -gcdiag ./...

# End-to-end smoke of the trial-serving daemon: boots meshsortd on a
# random port, serves one job per algorithm through meshsortctl, asserts
# a cache hit on resubmit, queue-full 429 backpressure, and that SIGTERM
# drains without dropping a queued job's result.
serve-smoke:
	sh scripts/serve_smoke.sh

# store-smoke is the crash-resume gate: SIGKILL meshsortd mid-campaign
# (race-detector build), restart over the same store directory, and assert
# the resumed campaign runs only the missing cells and exports
# byte-identically to an uninterrupted run.
store-smoke:
	sh scripts/store_smoke.sh

# fabric-smoke is the dead-peer gate: boot three worker daemons and a
# coordinator (race-detector builds), SIGKILL one worker mid-sweep, and
# assert the coordinator requeues its shards onto the survivors and the
# exported payload is byte-identical to a single-node run.
fabric-smoke:
	sh scripts/fabric_smoke.sh

# lint is the full static gate CI runs: formatting, go vet, meshlint,
# and — when the tools are installed — staticcheck and govulncheck.
# The optional tools are skipped locally if absent so the target works
# offline; CI installs them.
lint:
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/meshlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		else echo "lint: govulncheck not installed, skipping"; fi

cover:
	$(GO) test -cover ./...
