# Convenience targets for the meshsort reproduction.

GO ?= go

.PHONY: all build test test-race bench bench-batch experiments experiments-quick lemmas fmt vet cover

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./internal/engine/ ./internal/experiments/ ./internal/procmesh/

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable speedup record for the batched trial engine and the
# bit-packed 0-1 kernel (writes BENCH_batch.json at the repo root).
bench-batch:
	$(GO) run ./cmd/benchbatch -out BENCH_batch.json

experiments:
	$(GO) run ./cmd/experiments

experiments-quick:
	$(GO) run ./cmd/experiments -quick

lemmas:
	$(GO) run ./cmd/lemmas -side 8 -trials 500

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

cover:
	$(GO) test -cover ./...
