// Package meshsort is a simulator and analysis toolkit for the five
// two-dimensional generalizations of the odd-even transposition ("bubble")
// sort studied in:
//
//	Serap A. Savari, "Average Case Analysis of Five Two-Dimensional Bubble
//	Sorting Algorithms", SPAA 1993.
//
// The package sorts N values on a √N×√N mesh of processors using
// synchronous compare-exchange steps and reproduces the paper's analysis:
// the Θ(N) average-case step counts, the exact expectations and variances
// of the column statistics driving the proofs, the concentration bounds,
// the worst-case constructions, and the appendix's odd-side-length variants
// — each as a runnable experiment (see internal/experiments and
// cmd/experiments).
//
// # Quick start
//
//	g := meshsort.RandomMesh(1, 16)               // 16×16 random permutation
//	res, err := meshsort.Sort(g, meshsort.SnakeA, meshsort.Options{})
//	fmt.Println(res.Steps)                         // Θ(N) on average
//
// Algorithms: RowMajorRowFirst and RowMajorColFirst sort into row-major
// order and use wrap-around wires between the first and last columns;
// SnakeA, SnakeB and SnakeC sort into snakelike order; Shearsort is the
// classical Θ(√N·log N) baseline used for comparison.
package meshsort

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Grid is an R×C mesh of integer values (re-exported from internal/grid).
type Grid = grid.Grid

// Order identifies a target output ordering.
type Order = grid.Order

// Target orderings.
const (
	// RowMajor reads the mesh row by row, left to right.
	RowMajor = grid.RowMajor
	// Snake reads odd rows left to right and even rows right to left.
	Snake = grid.Snake
)

// Algorithm identifies one of the sorting procedures.
type Algorithm = core.Algorithm

// The five algorithms of the paper, the baseline, and the ablation.
const (
	RowMajorRowFirst       = core.RowMajorRowFirst
	RowMajorColFirst       = core.RowMajorColFirst
	SnakeA                 = core.SnakeA
	SnakeB                 = core.SnakeB
	SnakeC                 = core.SnakeC
	Shearsort              = core.Shearsort
	RowMajorRowFirstNoWrap = core.RowMajorRowFirstNoWrap
)

// Options configures a run (worker count, step cap, observer hook).
type Options = engine.Options

// Result reports a run's step, swap, and comparison counts.
type Result = engine.Result

// Algorithms returns the five paper algorithms in paper order.
func Algorithms() []Algorithm { return core.Algorithms() }

// AlgorithmByName resolves a short name (rm-rf, rm-cf, snake-a, snake-b,
// snake-c, shearsort, rm-rf-nowrap).
func AlgorithmByName(name string) (Algorithm, error) { return core.ByName(name) }

// Sort runs algorithm a on g in place until g reaches a.Order(), returning
// the step count.
func Sort(g *Grid, a Algorithm, opts Options) (Result, error) {
	return core.Sort(g, a, opts)
}

// StepsToSort runs a on a copy of g and returns only the step count.
func StepsToSort(g *Grid, a Algorithm) (int, error) {
	return core.StepsToSort(g, a)
}

// NewMesh returns an empty (all zero) rows×cols mesh.
func NewMesh(rows, cols int) *Grid { return grid.New(rows, cols) }

// FromValues builds a mesh from row-major values.
func FromValues(rows, cols int, vals []int) *Grid { return grid.FromValues(rows, cols, vals) }

// RandomMesh returns a side×side mesh holding a uniformly random
// permutation of 1..side², deterministically derived from seed.
func RandomMesh(seed uint64, side int) *Grid {
	return workload.RandomPermutation(rng.New(seed), side, side)
}

// RandomZeroOneMesh returns a side×side 0-1 mesh with exactly alpha zeroes,
// the paper's A^01 input model.
func RandomZeroOneMesh(seed uint64, side, alpha int) *Grid {
	return workload.RandomZeroOne(rng.New(seed), side, side, alpha)
}

// WorstCaseMesh returns the Corollary 1 adversarial 0-1 input: one all-zero
// column in a mesh of ones.
func WorstCaseMesh(side int) *Grid { return workload.AllZeroColumn(side, side, 0) }

// ExperimentConfig configures the reproduction experiments.
type ExperimentConfig = experiments.Config

// ExperimentOutcome is the result of one reproduction experiment.
type ExperimentOutcome = experiments.Outcome

// Experiments returns the full E01–E15 reproduction suite.
func Experiments() []experiments.Experiment { return experiments.All() }

// RunExperiment runs one experiment by id ("E01" … "E15").
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentOutcome, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}
