package meshsort_test

import (
	"fmt"

	meshsort "repro"
)

// Sorting a deterministic mesh into snakelike order with the first
// snakelike algorithm.
func ExampleSort() {
	g := meshsort.FromValues(2, 2, []int{4, 2, 1, 3})
	res, err := meshsort.Sort(g, meshsort.SnakeA, meshsort.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("sorted:", res.Sorted)
	fmt.Print(g)
	// Output:
	// sorted: true
	// 1 2
	// 4 3
}

// Row-major order requires the wrap-around algorithms.
func ExampleSort_rowMajor() {
	g := meshsort.FromValues(2, 2, []int{4, 2, 1, 3})
	if _, err := meshsort.Sort(g, meshsort.RowMajorRowFirst, meshsort.Options{}); err != nil {
		panic(err)
	}
	fmt.Print(g)
	// Output:
	// 1 2
	// 3 4
}

func ExampleAlgorithmByName() {
	alg, _ := meshsort.AlgorithmByName("snake-c")
	fmt.Println(alg, "->", alg.Order())
	// Output:
	// snakelike C -> snakelike
}

// StepsToSort leaves its input untouched and reports only the step count.
func ExampleStepsToSort() {
	g := meshsort.WorstCaseMesh(8) // Corollary 1 adversarial input, N = 64
	steps, _ := meshsort.StepsToSort(g, meshsort.RowMajorRowFirst)
	fmt.Println(steps >= 2*64-4*8) // at least 2N − 4√N
	// Output:
	// true
}
